package chaos

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netobjects/internal/core"
	"netobjects/internal/obs"
	"netobjects/internal/pickle"
	"netobjects/internal/refmodel"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// SoakConfig parameterises one soak run. The zero value gets sensible
// defaults; Seed and Profile are what an experiment varies.
type SoakConfig struct {
	// Spaces is how many spaces participate (default 4, minimum 2).
	Spaces int
	// Ops is how many workload operations to run (default 400).
	Ops int
	// Seed drives both the workload and the fault schedule; the same
	// seed reproduces the same run.
	Seed uint64
	// Profile names the fault mix: "loss" (drop/duplicate/reorder),
	// "partition" (scripted full and asymmetric partitions over light
	// loss), "crash" (scripted crash/restart over light loss), "mixed"
	// (all of the above), or "none" (no faults: the baseline).
	Profile string
	// Transport selects the links the spaces talk over: "inmem" (default,
	// the in-process transport) or "tcp" (real loopback TCP, exercising
	// the framed socket path and the multiplexed sessions over it). TCP
	// nodes reserve a fixed loopback port up front so a crashed node
	// restarts at the same endpoint, as the collector protocol assumes.
	Transport string
	// Liveness selects the collector's dead-client detection for the
	// soaked spaces: "ping" (default, owner-driven probing) or "lease"
	// (client-renewed leases with owner-side stripe expiry). Both run with
	// session-subsumed liveness on, as production would.
	Liveness string
	// HealTimeout bounds the post-heal quiescence wait (default 30s).
	HealTimeout time.Duration
	// Metrics, when non-nil, receives the chaos fault counters
	// (netobj_chaos_*) in its registry, for /metrics exposure.
	Metrics *obs.Metrics
	// Tracer, when non-nil, additionally receives every space's events
	// and the harness's crash/restart markers (e.g. an obs.Ring feeding
	// /debug/netobj/trace.jsonl).
	Tracer obs.Tracer
	// Logger receives harness progress; nil discards it.
	Logger *slog.Logger
}

// SoakReport is the outcome of one soak run.
type SoakReport struct {
	Spaces    int
	Ops       int
	Seed      uint64
	Profile   string
	Transport string
	Liveness  string
	Elapsed   time.Duration
	// Faults aggregates the fault counters across every wrapper.
	Faults Stats
	// Crashes is how many scripted crash/restarts ran.
	Crashes int
	// AbandonedCleans counts clean calls given up after retries.
	AbandonedCleans uint64
	// Violations are trace-model safety violations: a withdraw while a
	// live, undropped client still held a surrogate. Must be empty.
	Violations []string
	// Leaks are surrogates still unreleased at non-crashed spaces after
	// heal and quiescence. Must be empty.
	Leaks []string
	// TableLeaks are non-empty import/export tables after quiescence.
	// Must be empty.
	TableLeaks []string

	// Registry-profile extras (Profile == "registry"): the replicated
	// agent tier's workload counts. Its invariant breaches — stale reads
	// beyond the lease, failed ops outside fault windows, lost acked
	// writes — land in Violations like everything else.
	RegistryWrites    int
	RegistryLookups   int
	RegistryFailovers uint64
	RegistryElections uint64

	// Distarray-profile extras (Profile == "distarray"): completed
	// verified sorts, worker-to-worker shuffle volume, and completed
	// digest-checked bulk replicas.
	DistSorts         int
	DistShuffledBytes uint64
	DistMirrors       int
}

// Failed reports whether any invariant was violated.
func (r *SoakReport) Failed() bool {
	return len(r.Violations) > 0 || len(r.Leaks) > 0 || len(r.TableLeaks) > 0
}

// String summarises the run for logs and the benchmark harness.
func (r *SoakReport) String() string {
	verdict := "OK"
	if r.Failed() {
		verdict = fmt.Sprintf("FAILED (%d violations, %d leaks, %d table leaks)",
			len(r.Violations), len(r.Leaks), len(r.TableLeaks))
	}
	if r.Profile == "distarray" {
		return fmt.Sprintf(
			"chaos soak %s/%s/%s seed=%d: %d workers, %d verified sorts (%d shuffle bytes), %d replicas, %d crashes, %d faults (%d drops, %d reorders), %v — %s",
			r.Profile, r.Transport, r.Liveness, r.Seed, r.Spaces,
			r.DistSorts, r.DistShuffledBytes, r.DistMirrors, r.Crashes,
			r.Faults.Faults(), r.Faults.Drops, r.Faults.Reorders,
			r.Elapsed.Round(time.Millisecond), verdict)
	}
	if r.Profile == "registry" {
		return fmt.Sprintf(
			"chaos soak %s/%s seed=%d: %d replicas, %d ops (%d writes, %d lookups), %d crashes, %d elections, %d client failovers, %v — %s",
			r.Profile, r.Transport, r.Seed, r.Spaces, r.Ops,
			r.RegistryWrites, r.RegistryLookups, r.Crashes,
			r.RegistryElections, r.RegistryFailovers,
			r.Elapsed.Round(time.Millisecond), verdict)
	}
	return fmt.Sprintf(
		"chaos soak %s/%s/%s seed=%d: %d spaces, %d ops, %d crashes, %d faults (%d drops, %d resets, %d dups, %d reorders, %d refusals), %d abandoned cleans, %v — %s",
		r.Profile, r.Transport, r.Liveness, r.Seed, r.Spaces, r.Ops, r.Crashes,
		r.Faults.Faults(), r.Faults.Drops, r.Faults.Resets, r.Faults.Duplicates,
		r.Faults.Reorders, r.Faults.Refusals, r.AbandonedCleans,
		r.Elapsed.Round(time.Millisecond), verdict)
}

// soakCounter is the workload service.
type soakCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *soakCounter) Incr(d int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n, nil
}

func (c *soakCounter) Value() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

// soakRelay passes references between spaces inside calls — the
// third-party hand-off path with its transient pins and result acks.
type soakRelay struct {
	mu   sync.Mutex
	held *core.Ref
}

func (r *soakRelay) Put(ref *core.Ref) error {
	r.mu.Lock()
	old := r.held
	r.held = ref
	r.mu.Unlock()
	if old != nil && old != ref {
		old.Release()
	}
	return nil
}

// Get hands out the currently held reference (nil when empty) — the
// receiver leg of a pipelined chain: PipeCall("Get").PipeCall("Incr").
// Marshaling it out takes the usual transient pin and result ack.
func (r *soakRelay) Get() (*core.Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.held, nil
}

func (r *soakRelay) Drop() error {
	r.mu.Lock()
	old := r.held
	r.held = nil
	r.mu.Unlock()
	if old != nil {
		old.Release()
	}
	return nil
}

// soakNode is one space slot: the chaos wrapper survives restarts, the
// space and its relay are per-incarnation.
type soakNode struct {
	idx    int
	name   string
	addr   string
	ct     *Transport
	mirror *refmodel.Mirror
	sp     *core.Space
	relay  *core.Ref
	down   bool
}

type harness struct {
	cfg       SoakConfig
	log       *slog.Logger
	inner     transport.Transport
	checker   *refmodel.TraceChecker
	nodes     []*soakNode
	abandoned atomic.Uint64
	crashes   int
}

// reserveLoopbackAddr has the kernel pick a free loopback port, then
// releases it, returning the concrete address. Soak nodes need a FIXED
// address known before the space exists: a crashed node must restart at
// the same endpoint so surviving peers' retried cleans reach the reborn
// space (whose incarnation check then acknowledges them as stale).
func reserveLoopbackAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr, nil
}

// RunSoak runs N spaces of the real runtime — core, dgc, objtable,
// transport — through a seeded randomized workload under the configured
// fault profile, then heals the network, drives the system to
// quiescence, and checks the collector invariants: no safety violation
// was observed, and nothing leaked.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Profile == "registry" {
		// The registry profile soaks the replicated agent tier rather
		// than the collector: replica crash/restart under a rebind and
		// leased-lookup workload, with its own invariants.
		return runRegistrySoak(cfg)
	}
	if cfg.Profile == "distarray" {
		// The distarray profile soaks the bulk data plane: distributed
		// sorts and bulk array replicas under OpData chunk faults, with
		// a worker crash-restarted mid-shuffle.
		return runDistArraySoak(cfg)
	}
	if cfg.Spaces < 2 {
		if cfg.Spaces != 0 {
			return nil, fmt.Errorf("chaos: soak needs at least 2 spaces, got %d", cfg.Spaces)
		}
		cfg.Spaces = 4
	}
	if cfg.HealTimeout <= 0 {
		cfg.HealTimeout = 30 * time.Second
	}
	if cfg.Profile == "" {
		cfg.Profile = "mixed"
	}
	switch cfg.Liveness {
	case "":
		cfg.Liveness = "ping"
	case "ping", "lease":
	default:
		return nil, fmt.Errorf("chaos: unknown soak liveness %q (want ping or lease)", cfg.Liveness)
	}
	var inner transport.Transport
	switch cfg.Transport {
	case "", "inmem":
		cfg.Transport = "inmem"
		inner = transport.NewMem()
	case "tcp":
		inner = transport.NewTCP()
	default:
		return nil, fmt.Errorf("chaos: unknown soak transport %q (want inmem or tcp)", cfg.Transport)
	}

	h := &harness{
		cfg:     cfg,
		log:     cfg.Logger,
		inner:   inner,
		checker: refmodel.NewTraceChecker(),
	}
	for i := 0; i < cfg.Spaces; i++ {
		n := &soakNode{
			idx:  i,
			name: fmt.Sprintf("sp%d", i),
			addr: fmt.Sprintf("sp%d", i),
		}
		if cfg.Transport == "tcp" {
			addr, err := reserveLoopbackAddr()
			if err != nil {
				return nil, fmt.Errorf("chaos: reserving soak port: %w", err)
			}
			n.addr = addr
		}
		n.ct = New(h.inner, n.name, cfg.Seed)
		n.ct.SetObserver(cfg.Tracer)
		if cfg.Metrics != nil {
			n.ct.RegisterMetrics(cfg.Metrics.Registry())
		}
		h.nodes = append(h.nodes, n)
	}
	for _, n := range h.nodes {
		if err := h.startSpace(n); err != nil {
			h.stopAll()
			return nil, err
		}
	}

	rules, episodes := h.schedule()
	for _, n := range h.nodes {
		n.ct.SetRules(rules)
	}

	start := time.Now()
	h.workload(episodes)

	// Heal everything and bring crashed nodes back, then drive the
	// system to quiescence: every reference released, every relay
	// emptied, every table empty.
	for _, n := range h.nodes {
		n.ct.HealAll()
	}
	for _, n := range h.nodes {
		if n.down {
			if err := h.startSpace(n); err != nil {
				h.stopAll()
				return nil, fmt.Errorf("chaos: post-heal restart of %s: %w", n.name, err)
			}
		}
	}

	report := &SoakReport{
		Spaces:    cfg.Spaces,
		Ops:       cfg.Ops,
		Seed:      cfg.Seed,
		Profile:   cfg.Profile,
		Transport: cfg.Transport,
		Liveness:  cfg.Liveness,
		Crashes:   h.crashes,
	}
	h.quiesce(report)
	report.Elapsed = time.Since(start)
	for _, n := range h.nodes {
		s := n.ct.Stats()
		report.Faults.Messages += s.Messages
		report.Faults.Drops += s.Drops
		report.Faults.Resets += s.Resets
		report.Faults.Duplicates += s.Duplicates
		report.Faults.Reorders += s.Reorders
		report.Faults.Delays += s.Delays
		report.Faults.Throttles += s.Throttles
		report.Faults.Refusals += s.Refusals
	}
	report.AbandonedCleans = h.abandoned.Load()
	report.Violations = h.checker.Violations()
	report.Leaks = h.checker.Leaks()
	h.stopAll()
	return report, nil
}

// startSpace creates (or recreates) the space for a node slot, exporting
// a fresh relay. The chaos wrapper is reused so partitions and rules
// installed on it persist across restarts of the space behind it.
func (h *harness) startSpace(n *soakNode) error {
	mirror := h.checker.Mirror()
	tracer := obs.Tracer(mirror)
	if h.cfg.Tracer != nil {
		tracer = obs.MultiTracer(mirror, h.cfg.Tracer)
	}
	liveness := core.LivenessPing
	if h.cfg.Liveness == "lease" {
		liveness = core.LivenessLease
	}
	sp, err := core.NewSpace(core.Options{
		Name:            n.name,
		Transports:      []transport.Transport{n.ct},
		ListenEndpoints: []string{wire.JoinEndpoint(n.ct.Proto(), n.addr)},
		Registry:        pickle.NewRegistry(),
		// Tight timeouts keep faulted operations from stalling the run;
		// liveness detection is fast enough to notice scripted crashes
		// within the soak. The trace checker needs VariantBirrell (the
		// FIFO variant emits surrogate-made before the dirty outcome is
		// known); batched cleans are fine since the serve side emits one
		// keyed event per batch member.
		// AutoRelease is load-bearing, not a convenience: a call that
		// times out after its arguments were decoded leaves the decoded
		// surrogates held by nobody, and only the weak-reference design
		// reclaims them — the paper's client-side GC role.
		Variant:         core.VariantBirrell,
		AutoRelease:     true,
		CallTimeout:     500 * time.Millisecond,
		DrainTimeout:    time.Second,
		RetryAttempts:   2,
		RetryBackoff:    3 * time.Millisecond,
		PingInterval:    150 * time.Millisecond,
		PingTimeout:     300 * time.Millisecond,
		PingMaxFailures: 4,
		// Lease mode (when selected): a TTL in the same band as the ping
		// policy's drop latency (4 failures x 150ms), so partitioned-dead
		// clients reclaim on a comparable clock.
		Liveness: liveness,
		LeaseTTL: 600 * time.Millisecond,
		// Abandoning a clean is how a client concludes an owner is dead,
		// and it must not happen merely because a fault window outlasted
		// the retry budget: under an asymmetric partition the owner still
		// sees the client answering pings, so a prematurely abandoned
		// clean leaves its dirty-set member behind forever. The budget
		// here (~60 attempts at a backoff capped at 32x the base) spans
		// any schedule's partition plus the heal, and the incarnation
		// check keeps it from stalling on crashed owners: the restarted
		// space acknowledges the stale clean as done.
		CleanMaxAttempts: 60,
		CleanBackoff:     25 * time.Millisecond,
		Tracer:           tracer,
		OnCleanAbandon:   func(wire.Key, bool, error) { h.abandoned.Add(1) },
		Logger:           h.log,
	})
	if err != nil {
		return err
	}
	mirror.SetID(sp.ID().String())
	relay, err := sp.Export(&soakRelay{})
	if err != nil {
		_ = sp.Close()
		return err
	}
	n.mirror, n.sp, n.relay, n.down = mirror, sp, relay, false
	return nil
}

// crash aborts a node's space without draining — the paper's terminated
// program instance — and records it so the trace checker excuses the
// node's surrogates.
func (h *harness) crash(n *soakNode) {
	if n.down {
		return
	}
	h.checker.ObserveCrash(n.sp.ID().String())
	if h.cfg.Tracer != nil {
		h.cfg.Tracer.Emit(obs.Event{Kind: obs.EvChaosCrash, Time: time.Now(), Peer: n.name})
	}
	h.log.Info("chaos: crashing space", "space", n.name)
	n.sp.Abort()
	n.down = true
	h.crashes++
}

// restart brings a crashed node back at the same endpoint with a fresh
// space identity, as a restarted process would.
func (h *harness) restart(n *soakNode) {
	if !n.down {
		return
	}
	if err := h.startSpace(n); err != nil {
		// The endpoint may still be tied up by the dying incarnation;
		// the post-heal pass retries.
		h.log.Warn("chaos: restart failed", "space", n.name, "err", err)
		return
	}
	if h.cfg.Tracer != nil {
		h.cfg.Tracer.Emit(obs.Event{Kind: obs.EvChaosRestart, Time: time.Now(), Peer: n.name})
	}
	h.log.Info("chaos: restarted space", "space", n.name)
}

// episode is one scripted fault action keyed to a workload op index.
type episode struct {
	at     int
	action func()
}

// schedule derives the ambient fault rules and the scripted episodes for
// the configured profile. Episode placement and victims come from the
// seed, so a run is reproducible from (seed, profile, ops, spaces).
func (h *harness) schedule() (Rules, []episode) {
	rng := rand.New(rand.NewSource(int64(h.cfg.Seed) ^ 0x5eed))
	ops := h.cfg.Ops
	pick := func() *soakNode { return h.nodes[rng.Intn(len(h.nodes))] }
	pickPair := func() (*soakNode, *soakNode) {
		a := pick()
		b := pick()
		for b == a {
			b = h.nodes[rng.Intn(len(h.nodes))]
		}
		return a, b
	}

	var rules Rules
	var eps []episode
	addPartition := func(from, to int, full bool) {
		a, b := pickPair()
		eps = append(eps, episode{at: from, action: func() {
			h.log.Info("chaos: partition", "a", a.name, "b", b.name, "full", full)
			a.ct.Partition(b.addr)
			if full {
				b.ct.Partition(a.addr)
			}
		}})
		eps = append(eps, episode{at: to, action: func() {
			a.ct.Heal(b.addr)
			b.ct.Heal(a.addr)
		}})
	}
	addCrash := func(from, to int) {
		v := pick()
		eps = append(eps, episode{at: from, action: func() { h.crash(v) }})
		eps = append(eps, episode{at: to, action: func() { h.restart(v) }})
	}

	switch h.cfg.Profile {
	case "none":
	case "loss":
		rules = Rules{Drop: 0.15, Duplicate: 0.10, Reorder: 0.20, Delay: time.Millisecond, Jitter: 3 * time.Millisecond}
	case "partition":
		rules = Rules{Drop: 0.05, Delay: time.Millisecond}
		addPartition(ops/4, ops/2, true)
		addPartition(ops*13/20, ops*4/5, false)
	case "crash":
		rules = Rules{Drop: 0.05}
		addCrash(ops/3, ops*9/20)
		addCrash(ops*2/3, ops*4/5)
	case "mixed":
		rules = Rules{Drop: 0.10, Duplicate: 0.05, Reorder: 0.10, Reset: 0.05, Jitter: 2 * time.Millisecond}
		addPartition(ops*3/10, ops/2, true)
		addCrash(ops*3/5, ops*3/4)
	default:
		rules = Rules{Drop: 0.10}
	}
	return rules, eps
}

// workload runs the randomized mix of exports, imports, calls, one-way
// calls, pipelined chains, third-party hand-offs and releases, firing
// scripted episodes at their op indices.
func (h *harness) workload(episodes []episode) {
	rng := rand.New(rand.NewSource(int64(h.cfg.Seed)))
	type held struct {
		ref  *core.Ref
		node int
	}
	var refs []held

	liveNode := func() *soakNode {
		for tries := 0; tries < len(h.nodes)*2; tries++ {
			n := h.nodes[rng.Intn(len(h.nodes))]
			if !n.down {
				return n
			}
		}
		return nil
	}

	for op := 0; op < h.cfg.Ops; op++ {
		for _, ep := range episodes {
			if ep.at == op {
				ep.action()
			}
		}
		switch rng.Intn(12) {
		case 0, 1: // export a fresh counter somewhere
			n := liveNode()
			if n == nil {
				continue
			}
			r, err := n.sp.Export(&soakCounter{})
			if err != nil {
				continue
			}
			refs = append(refs, held{ref: r, node: n.idx})
		case 2, 3, 4: // import someone's ref elsewhere and call it
			if len(refs) == 0 {
				continue
			}
			hd := refs[rng.Intn(len(refs))]
			n := liveNode()
			if n == nil {
				continue
			}
			w, err := hd.ref.WireRep()
			if err != nil {
				continue // released or its space crashed
			}
			r2, err := n.sp.Import(w)
			if err != nil {
				continue // withdrawn, partitioned or owner down: legal
			}
			refs = append(refs, held{ref: r2, node: n.idx})
			_, _ = r2.Call("Incr", int64(1)) // relays lack Incr: fine
		case 5, 6: // third-party hand-off through a relay
			if len(refs) == 0 {
				continue
			}
			hd := refs[rng.Intn(len(refs))]
			if hd.ref.IsOwner() || h.nodes[hd.node].down {
				continue
			}
			rn := liveNode()
			if rn == nil {
				continue
			}
			relayW, err := rn.relay.WireRep()
			if err != nil {
				continue
			}
			relayRef, err := h.nodes[hd.node].sp.Import(relayW)
			if err != nil {
				continue
			}
			refs = append(refs, held{ref: relayRef, node: hd.node})
			_, _ = relayRef.Call("Put", hd.ref) // may race a release: fine
		case 7, 8, 9: // release something
			if len(refs) == 0 {
				continue
			}
			k := rng.Intn(len(refs))
			hd := refs[k]
			refs[k] = refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			hd.ref.Release()
		case 10: // one-way call: no reply leg, ordered per peer
			if len(refs) == 0 {
				continue
			}
			hd := refs[rng.Intn(len(refs))]
			if h.nodes[hd.node].down {
				continue
			}
			_ = hd.ref.OneWay("Incr", int64(1)) // relays lack Incr: fine
		case 11: // two-deep pipelined chain through a relay: Get().Incr(1)
			n := liveNode()
			src := liveNode()
			if n == nil || src == nil || n == src {
				continue
			}
			relayW, err := n.relay.WireRep()
			if err != nil {
				continue
			}
			relayRef, err := src.sp.Import(relayW)
			if err != nil {
				continue
			}
			refs = append(refs, held{ref: relayRef, node: src.idx})
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			p := relayRef.PipeCall(ctx, "Get")
			// An empty relay breaks the chain (nil receiver), a fault may
			// break it harder: both are legal outcomes under chaos.
			_, _ = p.PipeCall(ctx, "Incr", int64(1)).Await(ctx)
			// The intermediate resolve shipped Get's result here anyway
			// (every pipelined call is answered), so this space now owns a
			// surrogate for whatever ref the relay handed out and must
			// release it like any other call result.
			if vals, err := p.Await(ctx); err == nil && len(vals) > 0 {
				if rr, ok := vals[0].(*core.Ref); ok && rr != nil {
					rr.Release()
				}
			}
			cancel()
		}
	}

	// Fire any episodes scheduled at or past the end (heals, restarts).
	for _, ep := range episodes {
		if ep.at >= h.cfg.Ops {
			ep.action()
		}
	}

	// Convergence phase part 1: empty the relays and release every
	// held reference. The quiescence check after heal does the rest.
	for _, n := range h.nodes {
		if !n.down {
			_, _ = n.relay.Call("Drop")
		}
	}
	for _, hd := range refs {
		hd.ref.Release()
	}
}

// quiesce waits for every live space's tables to drain, then records
// invariant results into the report. Relays are re-emptied on every
// iteration: a Put whose client timed out under faults can still be
// executing server-side and store a surrogate after an earlier Drop.
func (h *harness) quiesce(report *SoakReport) {
	deadline := time.Now().Add(h.cfg.HealTimeout)
	for {
		for _, n := range h.nodes {
			if !n.down {
				_, _ = n.relay.Call("Drop")
			}
		}
		// Drive the collector: orphaned surrogates (arguments of calls
		// that timed out before dispatch) are reclaimed by GC cleanups,
		// and an immediate liveness round (ping or lease-expiry sweep)
		// notices crashed incarnations without waiting out the ticker.
		runtime.GC()
		quiet := true
		for _, n := range h.nodes {
			n.sp.PokeLiveness()
			n.sp.Exports().Sweep()
		}
		for _, n := range h.nodes {
			if n.sp.Imports().Len() != 0 || n.sp.Exports().Len() != 0 {
				quiet = false
			}
		}
		if quiet || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range h.nodes {
		if il := n.sp.Imports().Len(); il != 0 {
			var keys []string
			for _, k := range n.sp.Imports().Keys() {
				keys = append(keys, fmt.Sprintf("%v(%v)", k, n.sp.Imports().StateOf(k)))
			}
			report.TableLeaks = append(report.TableLeaks,
				fmt.Sprintf("%s: %d imports leaked: %s", n.name, il, strings.Join(keys, " ")))
		}
		if el := n.sp.Exports().Len(); el != 0 {
			report.TableLeaks = append(report.TableLeaks,
				fmt.Sprintf("%s: %d exports leaked:\n%s", n.name, el, n.sp.Exports().DebugDump()))
		}
	}
}

func (h *harness) stopAll() {
	for _, n := range h.nodes {
		if n.sp != nil && !n.down {
			_ = n.sp.Close()
		}
	}
}
