package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"netobjects/internal/core"
	"netobjects/internal/pickle"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// TestPipeOpsClassified pins that the pipelined invocation ops
// self-identify to the fault injector — naked and through a mux
// envelope, the form they actually take on a session — so per-op rules
// can target, say, only promise resolutions. None of them may ever be
// replayed: a duplicated PipeCall or OneWay re-runs an application
// method, and a duplicated PromiseResolve could resolve a reused
// promise id with stale results.
func TestPipeOpsClassified(t *testing.T) {
	frames := map[wire.Op][]byte{
		wire.OpPipeHello:      wire.Marshal(nil, &wire.PipeHello{Caps: wire.CapPipeline}),
		wire.OpPipeCall:       wire.Marshal(nil, &wire.PipeCall{Obj: 1, Method: "M", Promise: 2}),
		wire.OpPromiseResolve: wire.Marshal(nil, &wire.PromiseResolve{Promise: 2, Status: wire.StatusOK}),
		wire.OpOneWay:         wire.Marshal(nil, &wire.OneWay{Obj: 1, Method: "Log", Seq: 3}),
	}
	for op, frame := range frames {
		if got := wire.PeekOp(frame); got != op {
			t.Fatalf("naked frame for %v classifies as %v", op, got)
		}
		muxed := append(wire.AppendMuxHeader(nil, 7), frame...)
		if got := wire.PeekOp(muxed); got != op {
			t.Fatalf("muxed frame for %v classifies as %v", op, got)
		}
		r := Rules{Drop: 1, Ops: []wire.Op{op}}
		if !r.matches(op) {
			t.Fatalf("rules restricted to %v do not match it", op)
		}
		if r.matches(wire.OpCall) {
			t.Fatalf("rules restricted to %v match OpCall", op)
		}
		if duplicable(op) {
			t.Fatalf("%v is duplicable; pipelined ops must never be replayed", op)
		}
	}
	// A batch frame travels naked at the session's top level and
	// classifies as itself; it is never replayable either.
	batch := wire.AppendBatchFrame(wire.AppendBatchHeader(nil),
		append(wire.AppendMuxHeader(nil, 7), frames[wire.OpOneWay]...))
	if got := wire.PeekOp(batch); got != wire.OpBatch {
		t.Fatalf("batch frame classifies as %v", got)
	}
	if duplicable(wire.OpBatch) {
		t.Fatal("OpBatch is duplicable")
	}
}

// pipeChainNode is a two-level linked object for pipelined chains: Next
// hops to the tail, Name reads it.
type pipeChainNode struct {
	next *core.Ref
	name string
}

func (n *pipeChainNode) Next() (*core.Ref, error) {
	if n.next == nil {
		return nil, errors.New("end of chain")
	}
	return n.next, nil
}

func (n *pipeChainNode) Name() (string, error) { return n.name, nil }

// chaosSpace builds a core space listening through the given chaos
// wrapper.
func chaosSpace(t *testing.T, ct *Transport, name, addr string) *core.Space {
	t.Helper()
	sp, err := core.NewSpace(core.Options{
		Name:            name,
		Transports:      []transport.Transport{ct},
		ListenEndpoints: []string{wire.JoinEndpoint(ct.Proto(), addr)},
		Registry:        pickle.NewRegistry(),
		CallTimeout:     800 * time.Millisecond,
		PingInterval:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sp.Close() })
	return sp
}

// TestDropPromiseResolveBreaksChainBounded swallows every OpPromiseResolve
// the owner sends and asserts the two properties pipelining owes the
// fault model: a chain whose resolutions are lost fails within the call
// deadline — never hangs — and after the network heals no promise-table
// entry is leaked on either side.
func TestDropPromiseResolveBreaksChainBounded(t *testing.T) {
	mem := transport.NewMem()
	ownerCT := New(mem, "owner", 11)
	// Resolutions travel from the owner back over the connection the
	// client dialed, so only accept-side wrapping can reach them.
	ownerCT.WrapAccepts(true)
	clientCT := New(mem, "client", 11)

	owner := chaosSpace(t, ownerCT, "owner", "owner")
	client := chaosSpace(t, clientCT, "client", "client")

	leaf, err := owner.Export(&pipeChainNode{name: "leaf"})
	if err != nil {
		t.Fatal(err)
	}
	rootRef, err := owner.Export(&pipeChainNode{next: leaf, name: "root"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := rootRef.WireRep()
	if err != nil {
		t.Fatal(err)
	}
	root, err := client.Import(w)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Sanity: on a perfect network the pipelined chain resolves.
	if got, err := root.PipeCall(ctx, "Next").PipeCall(ctx, "Name").Await(ctx); err != nil {
		t.Fatalf("chain on clean network: %v", err)
	} else if got[0] != "leaf" {
		t.Fatalf("chain resolved to %v, want leaf", got[0])
	}

	ownerCT.SetRules(Rules{Drop: 1.0, Ops: []wire.Op{wire.OpPromiseResolve}})

	start := time.Now()
	p1 := root.PipeCall(ctx, "Next")
	p2 := p1.PipeCall(ctx, "Name")
	if _, err := p2.Await(ctx); err == nil {
		t.Fatal("chain resolved with every PromiseResolve dropped")
	}
	if _, err := p1.Await(ctx); err == nil {
		t.Fatal("parent promise resolved with every PromiseResolve dropped")
	}
	// Bounded by the 800ms call deadline, not hung: generous slack for a
	// loaded CI box, but far below "stuck until some unrelated timeout".
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("broken chain took %v to fail; deadline is 800ms", elapsed)
	}
	if s := ownerCT.Stats(); s.Drops == 0 {
		t.Fatal("no PromiseResolve frames were dropped; the fault never engaged")
	}

	// Heal: the same link must serve fresh pipelined chains again.
	ownerCT.HealAll()
	if got, err := root.PipeCall(ctx, "Next").PipeCall(ctx, "Name").Await(ctx); err != nil {
		t.Fatalf("chain after heal: %v", err)
	} else if got[0] != "leaf" {
		t.Fatalf("chain after heal resolved to %v, want leaf", got[0])
	}

	// Leak check: once in-flight work settles, neither side may retain a
	// promise-table entry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if client.PromisesPending() == 0 && owner.PromisesPending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked promise entries after heal: client=%d owner=%d",
				client.PromisesPending(), owner.PromisesPending())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
