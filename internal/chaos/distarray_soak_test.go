package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestSoakDistArray soaks the bulk data plane: distributed sorts and
// bulk array replicas with OpData chunks dropped and reordered, one
// worker crash-restarted mid-shuffle, then heal. Invariants: the
// baseline and post-heal sorts complete and verify, every faulted
// attempt terminates inside its deadline, completed replicas match the
// sort digests, and after heal no surrogate or table entry leaks.
func TestSoakDistArray(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := RunSoak(SoakConfig{
				Spaces:      3,
				Ops:         soakOps(t),
				Seed:        seed,
				Profile:     "distarray",
				HealTimeout: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep)
			if rep.Failed() {
				t.Fatalf("distarray soak failed:\nviolations: %v\nleaks: %v\ntable leaks: %v",
					rep.Violations, rep.Leaks, rep.TableLeaks)
			}
			// The fault-free baseline and post-heal sorts always verify,
			// so at least 2 sorts and 1 replica must have completed.
			if rep.DistSorts < 2 {
				t.Errorf("only %d sorts completed, want the baseline and post-heal sorts at least", rep.DistSorts)
			}
			if rep.DistMirrors < 1 {
				t.Errorf("no bulk replica completed")
			}
			if rep.Faults.Faults() == 0 {
				t.Errorf("distarray profile injected no faults")
			}
			if rep.Crashes != 1 {
				t.Errorf("crashes = %d, want the one mid-shuffle crash", rep.Crashes)
			}
		})
	}
}
