package chaos

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"netobjects/internal/obs"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// collectServer accepts connections on l and records every frame it
// receives, answering each with a CleanAck so duplicate replays complete.
type collectServer struct {
	mu     sync.Mutex
	frames [][]byte
}

func serveCollect(t *testing.T, l transport.Listener) *collectServer {
	t.Helper()
	s := &collectServer{}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					f, err := c.Recv(nil)
					if err != nil {
						return
					}
					s.mu.Lock()
					s.frames = append(s.frames, append([]byte(nil), f...))
					s.mu.Unlock()
					if err := c.Send(wire.Marshal(nil, &wire.CleanAck{})); err != nil {
						return
					}
				}
			}()
		}
	}()
	return s
}

func (s *collectServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func TestRollDeterministicAndSeedSensitive(t *testing.T) {
	a := roll(1, "sp0", "x", wire.OpClean, 7, saltDrop)
	if b := roll(1, "sp0", "x", wire.OpClean, 7, saltDrop); a != b {
		t.Fatalf("same inputs rolled %v then %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("roll out of range: %v", a)
	}
	// Different seed, link, op, seq or salt must each decorrelate.
	diff := 0
	for i, v := range []float64{
		roll(2, "sp0", "x", wire.OpClean, 7, saltDrop),
		roll(1, "sp1", "x", wire.OpClean, 7, saltDrop),
		roll(1, "sp0", "y", wire.OpClean, 7, saltDrop),
		roll(1, "sp0", "x", wire.OpDirty, 7, saltDrop),
		roll(1, "sp0", "x", wire.OpClean, 8, saltDrop),
		roll(1, "sp0", "x", wire.OpClean, 7, saltReset),
	} {
		if v != a {
			diff++
		} else {
			t.Logf("variant %d collided (possible but unlikely)", i)
		}
	}
	if diff < 5 {
		t.Fatalf("rolls insufficiently sensitive to inputs: %d/6 differ", diff)
	}
}

// runDropSchedule sends n clean frames through a fresh wrapper with the
// given seed and returns which indices were dropped.
func runDropSchedule(t *testing.T, seed uint64, n int) []int {
	t.Helper()
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveCollect(t, l)

	ct := New(mem, "client", seed)
	ct.SetRules(Rules{Drop: 0.5})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var dropped []int
	for i := 0; i < n; i++ {
		frame := wire.Marshal(nil, &wire.Clean{Obj: uint64(i), Client: 1, Seq: 1})
		if err := c.Send(frame); err != nil {
			t.Fatal(err)
		}
		_ = c.SetDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := c.Recv(nil); err != nil {
			dropped = append(dropped, i) // no ack: the frame was swallowed
		}
		_ = c.SetDeadline(time.Time{})
	}
	return dropped
}

func TestDropScheduleDeterministic(t *testing.T) {
	a := runDropSchedule(t, 42, 40)
	b := runDropSchedule(t, 42, 40)
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("drop=0.5 dropped %d/40 — schedule degenerate", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed dropped %d then %d frames", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
	}
	c := runDropSchedule(t, 43, 40)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPerOpMatching(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := serveCollect(t, l)

	ct := New(mem, "client", 7)
	// Drop every clean; leave dirties untouched.
	ct.SetRules(Rules{Drop: 1.0, Ops: []wire.Op{wire.OpClean}})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Send(wire.Marshal(nil, &wire.Clean{Obj: 1, Client: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(wire.Marshal(nil, &wire.Dirty{Obj: 1, Client: 1, Seq: 2})); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(time.Second))
	if _, err := c.Recv(nil); err != nil {
		t.Fatalf("dirty should pass through: %v", err)
	}
	if n := srv.count(); n != 1 {
		t.Fatalf("server saw %d frames, want 1 (the dirty)", n)
	}
	if s := ct.Stats(); s.Drops != 1 {
		t.Fatalf("drops=%d, want 1", s.Drops)
	}
}

func TestResetClosesConnection(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveCollect(t, l)

	ct := New(mem, "client", 7)
	ct.SetRules(Rules{Reset: 1.0})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Send(wire.Marshal(nil, &wire.Ping{From: 1}))
	if err == nil {
		t.Fatal("reset fault should surface as a send error")
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("reset error should wrap ErrClosed: %v", err)
	}
	if err := c.Send([]byte{1}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("connection should be closed after reset: %v", err)
	}
	if s := ct.Stats(); s.Resets != 1 {
		t.Fatalf("resets=%d, want 1", s.Resets)
	}
}

func TestDuplicateReplaysCollectorOps(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := serveCollect(t, l)

	ct := New(mem, "client", 7)
	ct.SetRules(Rules{Duplicate: 1.0})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Send(wire.Marshal(nil, &wire.Clean{Obj: 5, Client: 1, Seq: 3})); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(time.Second))
	if _, err := c.Recv(nil); err != nil {
		t.Fatal(err)
	}
	// Original plus one replay on a fresh connection.
	deadline := time.Now().Add(2 * time.Second)
	for srv.count() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.count(); n != 2 {
		t.Fatalf("server saw %d frames, want 2 (original + duplicate)", n)
	}
	// A Call must never be duplicated, whatever the schedule says.
	if err := c.Send(wire.Marshal(nil, &wire.Call{Obj: 1, Method: "M"})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := srv.count(); n != 3 {
		t.Fatalf("server saw %d frames, want 3 (calls are not duplicated)", n)
	}
	if s := ct.Stats(); s.Duplicates != 1 {
		t.Fatalf("duplicates=%d, want 1", s.Duplicates)
	}
}

func TestDelayAndThrottle(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveCollect(t, l)

	ct := New(mem, "client", 7)
	ct.SetRules(Rules{Delay: 30 * time.Millisecond})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Send(wire.Marshal(nil, &wire.Ping{From: 1})); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed send took %v, want >= 30ms", d)
	}

	// 1000 B/s: a ~10-byte frame costs ~10ms.
	ct.SetRules(Rules{BandwidthBps: 1000})
	start = time.Now()
	if err := c.Send(wire.Marshal(nil, &wire.Clean{Obj: 1, Client: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("throttled send took %v, want >= 5ms", d)
	}
	s := ct.Stats()
	if s.Delays < 2 || s.Throttles != 1 {
		t.Fatalf("delays=%d throttles=%d", s.Delays, s.Throttles)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveCollect(t, l)

	ring := obs.NewRing(32)
	ct := New(mem, "client", 7)
	ct.SetObserver(ring)

	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	ct.Partition("owner")
	// Existing connections are severed...
	if err := c.Send([]byte{1}); err == nil {
		t.Fatal("partition should sever open connections")
	}
	if transport.Healthy(c) {
		t.Fatal("severed connection should report unhealthy")
	}
	// ...and new dials refused.
	if _, err := ct.Dial("owner"); !errors.Is(err, transport.ErrNoEndpoint) {
		t.Fatalf("partitioned dial: %v", err)
	}
	if s := ct.Stats(); s.Refusals != 1 {
		t.Fatalf("refusals=%d, want 1", s.Refusals)
	}

	ct.Heal("owner")
	c2, err := ct.Dial("owner")
	if err != nil {
		t.Fatalf("healed dial: %v", err)
	}
	defer c2.Close()
	if err := c2.Send(wire.Marshal(nil, &wire.Ping{From: 1})); err != nil {
		t.Fatal(err)
	}
	if ring.CountKind(obs.EvChaosPartition) != 1 || ring.CountKind(obs.EvChaosHeal) != 1 {
		t.Fatal("partition/heal events not traced")
	}
}

func TestHealAllClearsRules(t *testing.T) {
	mem := transport.NewMem()
	ct := New(mem, "client", 7)
	ct.SetRules(Rules{Drop: 1.0})
	ct.SetLinkRules("owner", Rules{Reset: 1.0})
	ct.Partition("owner")
	ct.HealAll()
	if ct.Partitioned("owner") {
		t.Fatal("HealAll left a partition")
	}
	if r := ct.rulesFor("owner"); r.active() {
		t.Fatalf("HealAll left rules active: %v", r)
	}
}

func TestFaultEventsAndDebugSection(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveCollect(t, l)

	ring := obs.NewRing(32)
	ct := New(mem, "client", 7)
	ct.SetObserver(ring)
	ct.SetRules(Rules{Drop: 1.0, Ops: []wire.Op{wire.OpClean}})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(wire.Marshal(nil, &wire.Clean{Obj: 1, Client: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != obs.EvChaosFault {
		t.Fatalf("events=%v", evs)
	}
	if evs[0].Key != "drop" || evs[0].Method != "clean" || !strings.Contains(evs[0].Peer, "owner") {
		t.Fatalf("fault event fields: %+v", evs[0])
	}

	reg := obs.NewRegistry()
	ct.RegisterMetrics(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "netobj_chaos_drops_total 1") {
		t.Fatalf("metrics missing drop counter:\n%s", b.String())
	}

	dbg := ct.DebugSection()
	for _, want := range []string{"seed 7", "drop=1.00", "drops 1"} {
		if !strings.Contains(dbg, want) {
			t.Fatalf("debug section missing %q:\n%s", want, dbg)
		}
	}
}

// TestMuxEnvelopeClassification checks per-op fault rules see through the
// session mux envelope: a multiplexed frame is classified by its inner
// message type, so schedules written against collector ops keep working
// when the traffic rides shared peer sessions.
func TestMuxEnvelopeClassification(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := serveCollect(t, l)

	ct := New(mem, "client", 7)
	ct.SetRules(Rules{Drop: 1.0, Ops: []wire.Op{wire.OpClean}})
	c, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wrap := func(id uint64, m wire.Message) []byte {
		return append(wire.AppendMuxHeader(nil, id), wire.Marshal(nil, m)...)
	}
	// A mux-wrapped clean must be recognized as a clean and dropped: no
	// frame reaches the server, no ack comes back.
	if err := c.Send(wrap(1, &wire.Clean{Obj: 1, Client: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := c.Recv(nil); err == nil {
		t.Fatal("mux-wrapped clean was delivered despite drop rule")
	}
	_ = c.SetDeadline(time.Time{})
	if n := srv.count(); n != 0 {
		t.Fatalf("server received %d frames, want 0", n)
	}

	// A mux-wrapped dirty does not match the clean-only rule and passes
	// through with its envelope intact.
	if err := c.Send(wrap(2, &wire.Dirty{Obj: 1, Client: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Recv(nil); err != nil {
		t.Fatalf("mux-wrapped dirty not delivered: %v", err)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.frames) != 1 {
		t.Fatalf("server received %d frames, want 1", len(srv.frames))
	}
	if !wire.IsMux(srv.frames[0]) {
		t.Fatal("envelope stripped in transit")
	}
	if op := wire.PeekOp(srv.frames[0]); op != wire.OpDirty {
		t.Fatalf("delivered frame classifies as %v, want dirty", op)
	}
}
