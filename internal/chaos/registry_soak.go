package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"netobjects/internal/core"
	"netobjects/internal/pickle"
	"netobjects/internal/registry"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// Registry soak tuning. The schedule kills one replica at a time — first
// a follower, then the sequencer — so some member is always alive; the
// resolver contract says clients keep working whenever that holds.
const (
	regLease      = 250 * time.Millisecond // reader lease: the staleness budget
	regLeaseSlack = 750 * time.Millisecond // scheduling slack on the budget
	regSettle     = 2 * time.Second        // grace after a crash/restart before failures count
	regPace       = 2 * time.Millisecond   // per-op pacing so leases and probes elapse
	regNames      = 5
)

// regAck is one acknowledged write: the version the sequencer assigned
// and when the ack arrived.
type regAck struct {
	version uint64
	at      time.Time
}

// regNode is one replica slot: a fixed endpoint whose space and replica
// are torn down on crash and rebuilt on restart.
type regNode struct {
	idx  int
	name string
	addr string
	ct   *Transport
	sp   *core.Space
	rep  *registry.Replica
	down bool
	// elections accumulates the counter across incarnations: a crash
	// discards the space's metrics, so the running total is folded in
	// before each teardown.
	elections uint64
}

// regHarness drives the registry soak: replicas under a crash/restart
// schedule, a writing client and a reading client, and the two invariant
// checks — bounded staleness and no failures outside fault windows.
type regHarness struct {
	cfg   SoakConfig
	nodes []*regNode
	peers []string

	writer, reader *core.Space
	wres, rres     *registry.Resolver

	acked          map[string][]regAck
	turbulentUntil time.Time
	report         *SoakReport
}

// runRegistrySoak is RunSoak's "registry" profile: it soaks the
// replicated agent tier instead of the collector. Spaces is the replica
// count (default 3); the workload is rebinds and leased lookups while the
// schedule crashes and restarts replicas, including the sequencer.
func runRegistrySoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Spaces == 0 {
		cfg.Spaces = 3
	}
	if cfg.Spaces < 2 {
		return nil, fmt.Errorf("chaos: registry soak needs at least 2 replicas, got %d", cfg.Spaces)
	}
	var inner transport.Transport
	switch cfg.Transport {
	case "", "inmem":
		cfg.Transport = "inmem"
		inner = transport.NewMem()
	case "tcp":
		inner = transport.NewTCP()
	default:
		return nil, fmt.Errorf("chaos: unknown soak transport %q (want inmem or tcp)", cfg.Transport)
	}

	h := &regHarness{
		cfg:   cfg,
		acked: make(map[string][]regAck),
		report: &SoakReport{
			Spaces:    cfg.Spaces,
			Ops:       cfg.Ops,
			Seed:      cfg.Seed,
			Profile:   cfg.Profile,
			Transport: cfg.Transport,
		},
	}
	for i := 0; i < cfg.Spaces; i++ {
		n := &regNode{idx: i, name: fmt.Sprintf("reg%d", i), addr: fmt.Sprintf("reg%d", i)}
		if cfg.Transport == "tcp" {
			addr, err := reserveLoopbackAddr()
			if err != nil {
				return nil, fmt.Errorf("chaos: reserving replica port: %w", err)
			}
			n.addr = addr
		}
		n.ct = New(inner, n.name, cfg.Seed)
		n.ct.SetObserver(cfg.Tracer)
		if cfg.Metrics != nil {
			n.ct.RegisterMetrics(cfg.Metrics.Registry())
		}
		h.nodes = append(h.nodes, n)
		h.peers = append(h.peers, wire.JoinEndpoint(n.ct.Proto(), n.addr))
	}
	defer h.stop()
	for _, n := range h.nodes {
		if err := h.startReplica(n); err != nil {
			return nil, err
		}
	}
	if err := h.startClients(inner); err != nil {
		return nil, err
	}

	start := time.Now()
	if err := h.workload(); err != nil {
		return nil, err
	}
	h.converge()
	h.report.Elapsed = time.Since(start)
	for _, n := range h.nodes {
		s := n.ct.Stats()
		h.report.Faults.Messages += s.Messages
		h.report.Faults.Drops += s.Drops
		h.report.Faults.Resets += s.Resets
	}
	return h.report, nil
}

func (h *regHarness) regOpts(self int) registry.Options {
	return registry.Options{
		Peers:         h.peers,
		Self:          self,
		LeaseTTL:      regLease,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  150 * time.Millisecond,
		ProbeFailures: 2,
	}
}

func (h *regHarness) startReplica(n *regNode) error {
	sp, err := core.NewSpace(core.Options{
		Name:            n.name,
		Transports:      []transport.Transport{n.ct},
		ListenEndpoints: []string{wire.JoinEndpoint(n.ct.Proto(), n.addr)},
		Registry:        pickle.NewRegistry(),
		AutoRelease:     true,
		CallTimeout:     2 * time.Second,
		PingInterval:    150 * time.Millisecond,
		PingTimeout:     300 * time.Millisecond,
		PingMaxFailures: 4,
		Tracer:          h.cfg.Tracer,
		Logger:          h.cfg.Logger,
	})
	if err != nil {
		return err
	}
	rep, err := registry.Serve(sp, h.regOpts(n.idx))
	if err != nil {
		_ = sp.Close()
		return err
	}
	n.sp, n.rep, n.down = sp, rep, false
	return nil
}

func (h *regHarness) startClients(inner transport.Transport) error {
	mk := func(name string) (*core.Space, error) {
		addr := "client-" + name
		if h.cfg.Transport == "tcp" {
			var err error
			if addr, err = reserveLoopbackAddr(); err != nil {
				return nil, err
			}
		}
		return core.NewSpace(core.Options{
			Name:            name,
			Transports:      []transport.Transport{inner},
			ListenEndpoints: []string{wire.JoinEndpoint(inner.Proto(), addr)},
			Registry:        pickle.NewRegistry(),
			CallTimeout:     2 * time.Second,
			PingInterval:    time.Hour,
			Logger:          h.cfg.Logger,
		})
	}
	var err error
	if h.writer, err = mk("writer"); err != nil {
		return err
	}
	if h.reader, err = mk("reader"); err != nil {
		return err
	}
	if h.wres, err = registry.NewResolver(h.writer, registry.ResolverOptions{
		Peers:    h.peers,
		LeaseTTL: regLease,
	}); err != nil {
		return err
	}
	h.rres, err = registry.NewResolver(h.reader, registry.ResolverOptions{
		Peers:    h.peers,
		LeaseTTL: regLease,
	})
	return err
}

// crash kills a replica without draining, as a failed process would.
func (h *regHarness) crash(n *regNode) {
	if n.down {
		return
	}
	h.turbulentUntil = time.Now().Add(regSettle)
	n.elections += n.sp.Metrics().RegistryElections.Load()
	n.rep.Close()
	n.sp.Abort()
	n.down = true
	h.report.Crashes++
	h.cfg.Logger.Info("chaos: crashed replica", "replica", n.name)
}

func (h *regHarness) restart(n *regNode) error {
	if !n.down {
		return nil
	}
	h.turbulentUntil = time.Now().Add(regSettle)
	if err := h.startReplica(n); err != nil {
		return fmt.Errorf("chaos: restarting replica %s: %w", n.name, err)
	}
	h.cfg.Logger.Info("chaos: restarted replica", "replica", n.name)
	return nil
}

// violation records an op failure that the fault schedule does not
// excuse: some replica was live and settled, so the tier owed an answer.
func (h *regHarness) violation(format string, args ...any) {
	h.report.Violations = append(h.report.Violations, fmt.Sprintf(format, args...))
}

// staleFloor is the newest version whose ack predates the staleness
// budget at read time: any successful lookup must return at least it.
func (h *regHarness) staleFloor(name string, readAt time.Time) uint64 {
	cutoff := readAt.Add(-(regLease + regLeaseSlack))
	var floor uint64
	for _, a := range h.acked[name] {
		if a.at.Before(cutoff) && a.version > floor {
			floor = a.version
		}
	}
	return floor
}

// workload interleaves writes and leased reads over a fixed name set
// while the schedule crashes a follower and then the sequencer.
func (h *regHarness) workload() error {
	ops := h.cfg.Ops
	rng := rand.New(rand.NewSource(int64(h.cfg.Seed) ^ 0x4e4f))
	ctx := context.Background()

	// The service objects live on the writer; each name rebinds over the
	// same set so versions climb and leases go stale.
	refs := make([]*core.Ref, regNames)
	for i := range refs {
		r, err := h.writer.Export(&soakCounter{})
		if err != nil {
			return err
		}
		refs[i] = r
	}
	defer func() {
		for _, r := range refs {
			r.Release()
		}
	}()
	name := func(i int) string { return fmt.Sprintf("svc-%d", i) }
	for i := 0; i < regNames; i++ {
		v, err := h.wres.Bind(ctx, name(i), refs[i])
		if err != nil {
			return fmt.Errorf("chaos: seeding binding %s: %w", name(i), err)
		}
		h.acked[name(i)] = append(h.acked[name(i)], regAck{version: v, at: time.Now()})
	}

	// The schedule: crash a seeded follower, bring it back, then crash
	// the sequencer (replica 0) and bring it back — the failover and the
	// rejoin-takeback both happen under load.
	follower := 1 + rng.Intn(len(h.nodes)-1)
	episodes := map[int]func() error{
		ops / 4:     func() error { h.crash(h.nodes[follower]); return nil },
		ops * 2 / 5: func() error { return h.restart(h.nodes[follower]) },
		ops * 3 / 5: func() error { h.crash(h.nodes[0]); return nil },
		ops * 3 / 4: func() error { return h.restart(h.nodes[0]) },
	}

	for op := 0; op < ops; op++ {
		if ep := episodes[op]; ep != nil {
			if err := ep(); err != nil {
				return err
			}
		}
		settled := time.Now().After(h.turbulentUntil)
		k := rng.Intn(regNames)
		switch rng.Intn(5) {
		case 0: // rebind: the version climbs and leases elsewhere go stale
			opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
			v, err := h.wres.Rebind(opCtx, name(k), refs[k])
			cancel()
			if err != nil {
				if settled {
					h.violation("rebind %s failed outside a fault window: %v", name(k), err)
				}
				break
			}
			h.report.RegistryWrites++
			h.acked[name(k)] = append(h.acked[name(k)], regAck{version: v, at: time.Now()})
		default: // leased lookup, checked against the staleness budget
			readAt := time.Now()
			opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
			_, v, err := h.rres.Resolve(opCtx, name(k))
			cancel()
			if err != nil {
				if settled {
					h.violation("lookup %s failed outside a fault window: %v", name(k), err)
				}
				break
			}
			h.report.RegistryLookups++
			if floor := h.staleFloor(name(k), readAt); v < floor {
				h.violation("stale beyond lease: lookup %s saw version %d, but version %d was acked more than %v before the read",
					name(k), v, floor, regLease+regLeaseSlack)
			}
		}
		time.Sleep(regPace)
	}
	return nil
}

// converge restarts anything still down, waits for every replica to be
// ready with identical directory state, and then checks the durability
// invariant: no acknowledged write may be lost, no matter which replica
// crashed when.
func (h *regHarness) converge() {
	for _, n := range h.nodes {
		if n.down {
			if err := h.restart(n); err != nil {
				h.violation("post-run restart failed: %v", err)
				return
			}
		}
	}
	timeout := h.cfg.HealTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	same := func() bool {
		binds0, tombs0, _ := h.nodes[0].rep.Agent().SnapshotV()
		for _, n := range h.nodes[1:] {
			binds, tombs, _ := n.rep.Agent().SnapshotV()
			if len(binds) != len(binds0) || len(tombs) != len(tombs0) {
				return false
			}
			for i := range binds {
				if binds[i] != binds0[i] {
					return false
				}
			}
			for i := range tombs {
				if tombs[i] != tombs0[i] {
					return false
				}
			}
		}
		return true
	}
	lastLog := time.Now()
	for {
		ready := true
		for _, n := range h.nodes {
			if !n.rep.Ready() {
				ready = false
			}
		}
		if ready && same() {
			break
		}
		if time.Since(lastLog) > time.Second {
			lastLog = time.Now()
			for _, n := range h.nodes {
				binds, tombs, seq := n.rep.Agent().SnapshotV()
				h.cfg.Logger.Info("chaos: awaiting convergence",
					"replica", n.name, "status", n.rep.StatusString(),
					"bindings", fmt.Sprint(binds), "tombs", fmt.Sprint(tombs), "seq", seq)
			}
		}
		if time.Now().After(deadline) {
			h.violation("replicas did not converge within %v", timeout)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Durability: every acknowledged write is at or below the converged
	// version of its name — an ack that a crash could lose would show up
	// here as a converged version below it.
	for name, acks := range h.acked {
		_, cv, ok := h.nodes[0].rep.Agent().Binding(name)
		if !ok {
			h.violation("acked binding %s missing after convergence", name)
			continue
		}
		for _, a := range acks {
			if a.version > cv {
				h.violation("acked write %s@%d lost: replicas converged at %d", name, a.version, cv)
			}
		}
	}
	for _, n := range h.nodes {
		h.report.RegistryElections += n.elections + n.sp.Metrics().RegistryElections.Load()
	}
	h.report.RegistryFailovers = h.reader.Metrics().RegistryFailovers.Load() +
		h.writer.Metrics().RegistryFailovers.Load()
}

func (h *regHarness) stop() {
	if h.wres != nil {
		h.wres.Close()
	}
	if h.rres != nil {
		h.rres.Close()
	}
	if h.writer != nil {
		_ = h.writer.Close()
	}
	if h.reader != nil {
		_ = h.reader.Close()
	}
	for _, n := range h.nodes {
		if n.sp != nil && !n.down {
			n.rep.Close()
			_ = n.sp.Close()
		}
	}
}
