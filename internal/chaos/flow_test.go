package chaos

import (
	"testing"
	"time"

	"netobjects/internal/flow"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// TestFlowOpsClassified pins that the session layer's flow frames
// self-identify to the fault injector, so per-op rules can target a
// dropped grant or a lost chunk specifically — and that none of them is
// ever considered replayable: a duplicated chunk would corrupt an
// assembly and a duplicated grant would mint credit.
func TestFlowOpsClassified(t *testing.T) {
	frames := map[wire.Op][]byte{
		wire.OpData:         wire.AppendDataHeader(nil, 9, wire.DataFlagLast),
		wire.OpWindowUpdate: wire.AppendWindowUpdate(nil, 9, 4096),
		wire.OpFlowPing:     wire.AppendFlowPing(nil, 3, false),
		wire.OpFlowPong:     wire.AppendFlowPing(nil, 3, true),
	}
	for op, frame := range frames {
		if got := wire.PeekOp(frame); got != op {
			t.Fatalf("frame for %v classifies as %v", op, got)
		}
		r := Rules{Drop: 1, Ops: []wire.Op{op}}
		if !r.matches(op) {
			t.Fatalf("rules restricted to %v do not match it", op)
		}
		if r.matches(wire.OpCall) {
			t.Fatalf("rules restricted to %v match OpCall", op)
		}
		if duplicable(op) {
			t.Fatalf("%v is duplicable; flow frames must never be replayed", op)
		}
	}
}

// TestDroppedWindowUpdatesFailBounded is the issue's no-silent-deadlock
// property: with every window update swallowed, a credit-gated bulk
// transfer stalls — and the stalled sender must fail at its deadline,
// tear the receiver's half down with a reset, and leave the session
// usable for small traffic. What it must never do is hang past the
// deadline.
func TestDroppedWindowUpdatesFailBounded(t *testing.T) {
	mem := transport.NewMem()
	ct := New(mem, "client", 7)
	// Grants travel from the data's receiver; the client dials, so its
	// outbound grants are the ones the injector can swallow.
	ct.SetRules(Rules{Drop: 1.0, Ops: []wire.Op{wire.OpWindowUpdate}})

	l, err := mem.Listen("owner")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p := flow.Params{ChunkSize: 2 << 10, StreamWindow: 8 << 10, SessionWindow: 64 << 10, KeepaliveInterval: -1}
	const sendDeadline = 1 * time.Second
	srvErr := make(chan error, 16)
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := ct.Dial("owner")
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewSession(cc, transport.SessionOptions{Flow: &p})
	defer client.Close()
	big := make([]byte, 256<<10)
	server := transport.NewSession(<-accepted, transport.SessionOptions{Flow: &p, Accept: func(st *transport.Stream) {
		defer st.Close()
		req, err := st.Recv(nil)
		if err != nil {
			return
		}
		if string(req) == "bulk" {
			_ = st.SetDeadline(time.Now().Add(sendDeadline))
			srvErr <- st.Send(big)
			return
		}
		_ = st.Send(req)
	}})
	defer server.Close()

	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_ = st.SetDeadline(time.Now().Add(30 * time.Second))
	if err := st.Send([]byte("bulk")); err != nil {
		t.Fatal(err)
	}

	// The server exhausts its 8KB stream window (the grants that would
	// refill it are all dropped) and must fail at its send deadline.
	select {
	case err := <-srvErr:
		if err == nil {
			t.Fatal("256KB send completed with every window update dropped")
		}
		if err != transport.ErrTimeout {
			t.Fatalf("stalled send failed with %v, want ErrTimeout at its deadline", err)
		}
	case <-time.After(sendDeadline + 5*time.Second):
		t.Fatal("stalled send still blocked well past its deadline: silent deadlock")
	}

	// The abort's reset must tear down the client's half — Recv errors
	// rather than waiting forever for the missing final chunk.
	if _, err := st.Recv(nil); err == nil {
		t.Fatal("client received a complete message from an aborted transfer")
	}

	// The link itself must survive: small frames use no data credit and
	// round-trip fine after the failure.
	est, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	_ = est.SetDeadline(time.Now().Add(5 * time.Second))
	if err := est.Send([]byte("echo")); err != nil {
		t.Fatalf("small send after stalled bulk: %v", err)
	}
	if _, err := est.Recv(nil); err != nil {
		t.Fatalf("small recv after stalled bulk: %v", err)
	}
}
