package chaos

import (
	"fmt"
	"testing"
	"time"

	"netobjects/internal/core"
	"netobjects/internal/pickle"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

// TestKeepaliveSubsumedLiveness walks the full session-liveness state
// machine under real faults: a healthy identified session subsumes the
// owner's pings; a partition kills the session and explicit probing takes
// over; healing lets the next probe rebuild an identified session, which
// cancels the accumulating failure count before the drop policy fires.
func TestKeepaliveSubsumedLiveness(t *testing.T) {
	inner := transport.NewMem()
	ctOwner := New(inner, "owner", 1)
	ctClient := New(inner, "client", 1)
	mk := func(name string, ct *Transport) *core.Space {
		sp, err := core.NewSpace(core.Options{
			Name:            name,
			Transports:      []transport.Transport{ct},
			ListenEndpoints: []string{wire.JoinEndpoint(ct.Proto(), name)},
			Registry:        pickle.NewRegistry(),
			CallTimeout:     2 * time.Second,
			PingInterval:    time.Hour, // driven explicitly
			PingTimeout:     300 * time.Millisecond,
			PingMaxFailures: 1000, // the test, not the policy, decides drops
			// Fast keepalives so the partition kills the session quickly.
			KeepaliveInterval: 25 * time.Millisecond,
			RetryAttempts:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sp.Close() })
		return sp
	}
	owner := mk("owner", ctOwner)
	client := mk("client", ctClient)

	ref, err := owner.Export(&soakCounter{})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ref.WireRep()
	cref, err := client.Import(w)
	if err != nil {
		t.Fatal(err)
	}
	// The round trip guarantees the owner processed the client's PeerHello.
	if _, err := cref.Call("Incr", int64(1)); err != nil {
		t.Fatal(err)
	}

	// Phase 1: healthy session, probes subsumed.
	owner.PokeLiveness()
	owner.PokeLiveness()
	if n := owner.Stats().PingsSent; n != 0 {
		t.Fatalf("owner pinged %d times under a live session", n)
	}
	if owner.Metrics().PingsSubsumed.Load() == 0 {
		t.Fatal("no probe recorded as subsumed")
	}

	// Phase 2: full partition. Keepalives stop confirming the peer, the
	// session dies, and the pinger falls back to explicit probes (which
	// fail, accumulating failures — but never enough to drop).
	ctOwner.Partition("client")
	ctClient.Partition("owner")
	deadline := time.Now().Add(10 * time.Second)
	for owner.Stats().PingsSent == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinger never fell back to explicit probes after partition")
		}
		owner.PokeLiveness()
		time.Sleep(10 * time.Millisecond)
	}
	if !owner.Exports().HoldsDirty(w.Index, client.ID()) {
		t.Fatal("client dropped during the partition despite the failure budget")
	}

	// Phase 3: heal. The next probe dials a fresh session, both sides
	// advertise identity, and subsumption resumes — clearing the pending
	// failure count rather than letting it ratchet toward a drop.
	ctOwner.Heal("client")
	ctClient.Heal("owner")
	subsumedBefore := owner.Metrics().PingsSubsumed.Load()
	deadline = time.Now().Add(10 * time.Second)
	for owner.Metrics().PingsSubsumed.Load() == subsumedBefore {
		if time.Now().After(deadline) {
			t.Fatal("healed session never resumed subsuming probes")
		}
		owner.PokeLiveness()
		time.Sleep(10 * time.Millisecond)
	}
	if !owner.Exports().HoldsDirty(w.Index, client.ID()) {
		t.Fatal("registration lost across partition and heal")
	}
	if owner.Stats().ClientsDropped != 0 {
		t.Fatal("live client dropped despite heal")
	}
}

// TestSoakLease runs the fault matrix with lease-mode collectors: the
// aggregated per-peer leases plus session subsumption must deliver the
// same zero-leak convergence the ping-mode soak does.
func TestSoakLease(t *testing.T) {
	for _, profile := range []string{"loss", "partition", "crash"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			rep, err := RunSoak(SoakConfig{
				Spaces:      3,
				Ops:         soakOps(t),
				Seed:        4,
				Profile:     profile,
				Liveness:    "lease",
				HealTimeout: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep)
			if rep.Failed() {
				t.Fatalf("lease soak failed:\nviolations: %v\nleaks: %v\ntable leaks: %v",
					rep.Violations, rep.Leaks, rep.TableLeaks)
			}
			if rep.Faults.Faults() == 0 && rep.Crashes == 0 {
				t.Errorf("profile %s injected no faults", profile)
			}
		})
	}
}

// TestSoakLeaseNightly is the long lease-mode matrix for the nightly
// lane: many seeds per profile. Guarded by -short so the regular lanes
// keep their runtime.
func TestSoakLeaseNightly(t *testing.T) {
	if testing.Short() {
		t.Skip("nightly matrix: skipped in short mode")
	}
	if testing.Verbose() {
		t.Log("running extended lease-mode seed matrix")
	}
	seeds := []uint64{1, 2, 3, 5, 8}
	for _, profile := range []string{"partition", "crash"} {
		for _, seed := range seeds {
			profile, seed := profile, seed
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				rep, err := RunSoak(SoakConfig{
					Spaces:      3,
					Ops:         200,
					Seed:        seed,
					Profile:     profile,
					Liveness:    "lease",
					HealTimeout: 30 * time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Log(rep)
				if rep.Failed() {
					t.Fatalf("lease soak failed:\nviolations: %v\nleaks: %v\ntable leaks: %v",
						rep.Violations, rep.Leaks, rep.TableLeaks)
				}
			})
		}
	}
}
