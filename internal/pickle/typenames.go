package pickle

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry maps stable names to Go types so interface values can be pickled
// with their dynamic type and reconstructed by a peer. The two sides of a
// connection must register the same types under the same names, exactly as
// with encoding/gob.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}

// NewRegistry returns an empty registry with the built-in types
// pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		byName: make(map[string]reflect.Type),
		byType: make(map[reflect.Type]string),
	}
	r.registerBuiltins()
	return r
}

// DefaultRegistry is the registry used by picklers constructed with a nil
// registry. Package-level Register calls add to it.
var DefaultRegistry = NewRegistry()

// Register records the dynamic type of v in the default registry under its
// derived name. It is the pickle analogue of gob.Register.
func Register(v any) { DefaultRegistry.Register(v) }

// RegisterName records the dynamic type of v in the default registry under
// an explicit name.
func RegisterName(name string, v any) { DefaultRegistry.RegisterName(name, v) }

// Register records the dynamic type of v under its derived name (see
// TypeName).
func (r *Registry) Register(v any) {
	t := reflect.TypeOf(v)
	if t == nil {
		panic("pickle: Register(nil)")
	}
	r.RegisterName(TypeName(t), v)
}

// RegisterName records the dynamic type of v under name. Registering a
// different type under an existing name, or an existing type under a
// different name, panics: name clashes silently corrupt decoding.
func (r *Registry) RegisterName(name string, v any) {
	t := reflect.TypeOf(v)
	if t == nil {
		panic("pickle: RegisterName(nil)")
	}
	if name == "" {
		panic("pickle: RegisterName with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok && prev != t {
		panic(fmt.Sprintf("pickle: name %q already registered for %v", name, prev))
	}
	if prev, ok := r.byType[t]; ok && prev != name {
		panic(fmt.Sprintf("pickle: type %v already registered as %q", t, prev))
	}
	r.byName[name] = t
	r.byType[t] = name
}

// nameOf returns the registered or derivable name for t.
func (r *Registry) nameOf(t reflect.Type) (string, error) {
	r.mu.RLock()
	name, ok := r.byType[t]
	r.mu.RUnlock()
	if ok {
		return name, nil
	}
	// Unnamed composites of registered types are nameable structurally,
	// but only if every named component is itself registered — otherwise
	// the peer cannot resolve the name and the failure would surface at
	// decode time on the wrong machine. Named types must be registered.
	if t.Name() == "" {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			if _, err := r.nameOf(t.Elem()); err != nil {
				return "", err
			}
			return TypeName(t), nil
		case reflect.Map:
			if _, err := r.nameOf(t.Key()); err != nil {
				return "", err
			}
			if _, err := r.nameOf(t.Elem()); err != nil {
				return "", err
			}
			return TypeName(t), nil
		default:
			return TypeName(t), nil
		}
	}
	if t.PkgPath() == "" {
		return TypeName(t), nil // predeclared named type
	}
	return "", fmt.Errorf("%w: %v (call pickle.Register)", ErrUnregistered, t)
}

// typeOf resolves a pickled type name back to a type, synthesizing
// composite types ("[]T", "*T", "map[K]V", "[N]T") from registered
// elements when the composite itself was never registered.
func (r *Registry) typeOf(name string) (reflect.Type, error) {
	r.mu.RLock()
	t, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return t, nil
	}
	t, err := r.synthesize(name)
	if err != nil {
		return nil, err
	}
	// Cache the synthesized mapping for next time.
	r.mu.Lock()
	if prev, ok := r.byName[name]; ok {
		t = prev
	} else {
		r.byName[name] = t
	}
	r.mu.Unlock()
	return t, nil
}

func (r *Registry) synthesize(name string) (reflect.Type, error) {
	switch {
	case strings.HasPrefix(name, "*"):
		elem, err := r.typeOf(name[1:])
		if err != nil {
			return nil, err
		}
		return reflect.PointerTo(elem), nil
	case strings.HasPrefix(name, "[]"):
		elem, err := r.typeOf(name[2:])
		if err != nil {
			return nil, err
		}
		return reflect.SliceOf(elem), nil
	case strings.HasPrefix(name, "map["):
		keyName, valName, ok := splitMapName(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnregistered, name)
		}
		key, err := r.typeOf(keyName)
		if err != nil {
			return nil, err
		}
		val, err := r.typeOf(valName)
		if err != nil {
			return nil, err
		}
		return reflect.MapOf(key, val), nil
	case strings.HasPrefix(name, "["):
		i := strings.IndexByte(name, ']')
		if i < 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnregistered, name)
		}
		n, err := strconv.Atoi(name[1:i])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnregistered, name)
		}
		elem, err := r.typeOf(name[i+1:])
		if err != nil {
			return nil, err
		}
		return reflect.ArrayOf(n, elem), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnregistered, name)
}

// splitMapName splits "map[K]V" into K and V, honoring nested brackets in K.
func splitMapName(name string) (key, val string, ok bool) {
	rest := name[len("map["):]
	depth := 1
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				return rest[:i], rest[i+1:], rest[:i] != "" && rest[i+1:] != ""
			}
		}
	}
	return "", "", false
}

// TypeName derives the stable pickle name of a type: package-path-qualified
// for named types ("netobjects/examples/bank.Receipt"), structural for
// unnamed composites ("[]*bank.Receipt" style, using the same rule
// recursively).
func TypeName(t reflect.Type) string {
	if t.Name() != "" {
		if t.PkgPath() == "" {
			return t.Name() // predeclared: int, string, ...
		}
		return t.PkgPath() + "." + t.Name()
	}
	switch t.Kind() {
	case reflect.Pointer:
		return "*" + TypeName(t.Elem())
	case reflect.Slice:
		return "[]" + TypeName(t.Elem())
	case reflect.Array:
		return "[" + strconv.Itoa(t.Len()) + "]" + TypeName(t.Elem())
	case reflect.Map:
		return "map[" + TypeName(t.Key()) + "]" + TypeName(t.Elem())
	case reflect.Interface:
		if t.NumMethod() == 0 {
			return "interface{}"
		}
	case reflect.Struct:
		if t.NumField() == 0 {
			return "struct{}"
		}
	}
	// Anonymous structs and non-empty anonymous interfaces have no stable
	// cross-process name; use the reflect rendering, which both sides
	// derive identically from identical declarations.
	return t.String()
}

func (r *Registry) registerBuiltins() {
	builtins := []any{
		bool(false),
		int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0), uintptr(0),
		float32(0), float64(0),
		complex64(0), complex128(0),
		string(""),
		[]byte(nil),
		[]string(nil), []int(nil), []int64(nil), []float64(nil), []any(nil),
		map[string]any(nil), map[string]string(nil), map[string]int(nil),
		time.Time{}, time.Duration(0),
	}
	for _, v := range builtins {
		t := reflect.TypeOf(v)
		name := TypeName(t)
		r.byName[name] = t
		r.byType[t] = name
	}
	// interface{} has no value to register; map its name for composites.
	anyT := reflect.TypeOf((*any)(nil)).Elem()
	r.byName["interface{}"] = anyT
	r.byType[anyT] = "interface{}"
	// The empty struct appears as a set element type.
	emptyT := reflect.TypeOf(struct{}{})
	r.byName["struct{}"] = emptyT
	r.byType[emptyT] = "struct{}"
}
