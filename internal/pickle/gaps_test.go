package pickle

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"netobjects/internal/wire"
)

func TestAnySessionRoundTrip(t *testing.T) {
	p := newTestPickler()
	p.Registry().Register(inner{})
	vals := []any{int64(1), "two", inner{Label: "x", N: 3}, nil, []byte{9}}
	b, err := p.MarshalAnySession(nil, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.UnmarshalAnySession(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vals) {
		t.Fatalf("got %d values", len(out))
	}
	if out[0].(int64) != 1 || out[1].(string) != "two" || out[3] != nil {
		t.Fatalf("got %#v", out)
	}
	if out[2].(inner).N != 3 {
		t.Fatalf("got %#v", out[2])
	}
	// Bogus claimed count must be rejected, not allocated.
	e := wire.NewEncoder(nil)
	e.Uint(1 << 60)
	if _, err := p.UnmarshalAnySession(e.Bytes(), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v", err)
	}
}

func TestConvertAssignExported(t *testing.T) {
	dst := reflect.New(reflect.TypeOf(int32(0))).Elem()
	if err := ConvertAssign(dst, reflect.ValueOf(int64(7))); err != nil || dst.Int() != 7 {
		t.Fatalf("got %v %v", dst, err)
	}
	if err := ConvertAssign(dst, reflect.ValueOf(int64(1)<<40)); err == nil {
		t.Fatal("overflow accepted")
	}
	sdst := reflect.New(reflect.TypeOf("")).Elem()
	if err := ConvertAssign(sdst, reflect.ValueOf([]byte("hi"))); err != nil || sdst.String() != "hi" {
		t.Fatalf("bytes->string: %v %v", sdst, err)
	}
	if err := ConvertAssign(dst, reflect.ValueOf("nope")); err == nil {
		t.Fatal("string->int accepted")
	}
}

func TestEmptyStructCollections(t *testing.T) {
	p := newTestPickler()
	// Zero-size elements encode to zero bytes; the count sanity check
	// must not reject them, and huge legitimate lengths must work.
	in := make([]struct{}, 100000)
	b, err := p.Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out []struct{}
	if err := p.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len=%d", len(out))
	}
	m := map[string]struct{}{"a": {}, "b": {}}
	got := rtOne(t, p, m).(map[string]struct{})
	if len(got) != 2 {
		t.Fatalf("map: %v", got)
	}
}

type badBinary struct{ X int }

func (b badBinary) MarshalBinary() ([]byte, error) { return nil, errors.New("refuse") }
func (b *badBinary) UnmarshalBinary([]byte) error  { return errors.New("refuse") }

func TestBinaryMarshalerErrors(t *testing.T) {
	p := newTestPickler()
	if _, err := p.Marshal(nil, badBinary{X: 1}); err == nil {
		t.Fatal("marshal error swallowed")
	}
}

type goodBinary struct{ x byte }

func (g goodBinary) MarshalBinary() ([]byte, error) { return []byte{g.x}, nil }
func (g *goodBinary) UnmarshalBinary(b []byte) error {
	if len(b) != 1 {
		return fmt.Errorf("want 1 byte, got %d", len(b))
	}
	g.x = b[0]
	return nil
}

func TestBinaryMarshalerRoundTrip(t *testing.T) {
	p := newTestPickler()
	p.Registry().Register(goodBinary{})
	got := rtOne(t, p, goodBinary{x: 42}).(goodBinary)
	if got.x != 42 {
		t.Fatalf("got %+v", got)
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.RegisterName("x", inner{})
	r.RegisterName("x", inner{}) // idempotent: same pair
	expectPanic(t, func() { r.RegisterName("x", outer{}) })
	expectPanic(t, func() { r.RegisterName("y", inner{}) })
	expectPanic(t, func() { r.RegisterName("", inner{}) })
	expectPanic(t, func() { r.Register(nil) })
}

func expectPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTypeNameForms(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{int(0), "int"},
		{[]int(nil), "[]int"},
		{[3]byte{}, "[3]uint8"},
		{map[string][]int(nil), "map[string][]int"},
		{(*inner)(nil), "*netobjects/internal/pickle.inner"},
		{inner{}, "netobjects/internal/pickle.inner"},
	}
	for _, c := range cases {
		if got := TypeName(reflect.TypeOf(c.v)); got != c.want {
			t.Errorf("TypeName(%T) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSynthesizeNestedComposites(t *testing.T) {
	r := NewRegistry()
	r.Register(inner{})
	for _, name := range []string{
		"map[string][]*netobjects/internal/pickle.inner",
		"[4][]netobjects/internal/pickle.inner",
		"*map[int]string",
	} {
		if _, err := r.typeOf(name); err != nil {
			t.Errorf("synthesize %q: %v", name, err)
		}
	}
	for _, bad := range []string{"map[broken", "[zz]int", "ghost.Type", "[]ghost.Type"} {
		if _, err := r.typeOf(bad); err == nil {
			t.Errorf("synthesize %q: want error", bad)
		}
	}
}

func TestMaxDepthBoundary(t *testing.T) {
	p := newTestPickler()
	p.Registry().Register(&node{})
	// A deep but acyclic chain within the limit round-trips.
	var head *node
	for i := 0; i < 1000; i++ {
		head = &node{V: i, Next: head}
	}
	got := rtOne(t, p, head).(*node)
	if got.V != 999 {
		t.Fatalf("head %d", got.V)
	}
}

func TestPointerToPointer(t *testing.T) {
	p := newTestPickler()
	n := 5
	pp := &n
	ppp := &pp
	b, err := p.Marshal(nil, ppp)
	if err != nil {
		t.Fatal(err)
	}
	var out **int
	if err := p.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if **out != 5 {
		t.Fatalf("got %d", **out)
	}
}

func TestArrayOfStructsWithPointers(t *testing.T) {
	p := newTestPickler()
	shared := &inner{N: 1}
	type cell struct{ P *inner }
	type arr [3]cell
	in := arr{{P: shared}, {P: shared}, {P: nil}}
	got := rtOne(t, p, in).(arr)
	if got[0].P != got[1].P {
		t.Fatal("sharing lost inside array")
	}
	if got[2].P != nil {
		t.Fatal("nil pointer materialized")
	}
}

func TestTypedTupleRoundTrip(t *testing.T) {
	// MarshalValues/UnmarshalValues is the generated-stub fast path: the
	// tuple is encoded at declared static types, with no type names for
	// concrete slots.
	p := newTestPickler()
	registerDeep(p, reflect.TypeOf(outer{}), map[reflect.Type]bool{})
	vals := []reflect.Value{
		reflect.ValueOf(int64(5)),
		reflect.ValueOf("s"),
		reflect.ValueOf(outer{Name: "o", Ptr: &inner{N: 2}}),
		reflect.ValueOf([]float64{1.5, 2.5}),
	}
	typed, err := p.MarshalValues(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	// The typed encoding must be smaller than the dynamic one for the
	// same tuple (no type names).
	dynamic, err := p.Marshal(nil, int64(5), "s", outer{Name: "o", Ptr: &inner{N: 2}}, []float64{1.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(typed) >= len(dynamic) {
		t.Errorf("typed encoding (%dB) not smaller than dynamic (%dB)", len(typed), len(dynamic))
	}
	types := []reflect.Type{
		reflect.TypeOf(int64(0)), reflect.TypeOf(""),
		reflect.TypeOf(outer{}), reflect.TypeOf([]float64(nil)),
	}
	out, err := p.UnmarshalValues(typed, types)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Int() != 5 || out[1].String() != "s" {
		t.Fatalf("got %v %v", out[0], out[1])
	}
	if o := out[2].Interface().(outer); o.Name != "o" || o.Ptr.N != 2 {
		t.Fatalf("got %+v", o)
	}
	if xs := out[3].Interface().([]float64); len(xs) != 2 || xs[1] != 2.5 {
		t.Fatalf("got %v", xs)
	}
	// Wrong arity rejected.
	if _, err := p.UnmarshalValues(typed, types[:2]); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestTypedTupleInterfaceSlot(t *testing.T) {
	// Interface-typed slots inside a typed tuple still carry dynamic type
	// names, so any-typed parameters work on the fast path too.
	p := newTestPickler()
	p.Registry().Register(inner{})
	vals := []reflect.Value{reflect.ValueOf(&struct{ V any }{V: inner{N: 9}}).Elem().Field(0)}
	b, err := p.MarshalValues(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.UnmarshalValues(b, []reflect.Type{reflect.TypeOf((*any)(nil)).Elem()})
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].Interface().(inner); got.N != 9 {
		t.Fatalf("got %+v", got)
	}
}
