package pickle

import (
	"reflect"
	"testing"
)

// FuzzUnmarshalAny asserts the pickle decoder never panics on arbitrary
// bytes, at both dynamic and struct-typed destinations.
func FuzzUnmarshalAny(f *testing.F) {
	p := New(NewRegistry(), nil)
	registerDeep(p, reflect.TypeOf(outer{}), map[reflect.Type]bool{})
	seed1, _ := p.Marshal(nil, outer{Name: "x", Ptr: &inner{N: 1}, Tags: []string{"a"}})
	seed2, _ := p.Marshal(nil, map[string]any{"k": int64(1)}, "s", []byte{1, 2})
	shared := &inner{N: 2}
	seed3, _ := p.Marshal(nil, [2]*inner{shared, shared})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := New(NewRegistry(), nil)
		registerDeep(dec, reflect.TypeOf(outer{}), map[reflect.Type]bool{})
		_, _ = dec.UnmarshalAnySession(data, nil)
		var o outer
		_ = dec.Unmarshal(data, &o)
		var m map[string]any
		var s string
		var b []byte
		_ = dec.Unmarshal(data, &m, &s, &b)
	})
}
