package pickle

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func newTestPickler() *Pickler { return New(NewRegistry(), nil) }

// registerDeep registers every named type reachable from t so tests can
// round-trip without hand-listing registrations, mirroring what both sides
// of a real connection do at init time.
func registerDeep(p *Pickler, t reflect.Type, seen map[reflect.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	if t.Name() != "" && t.PkgPath() != "" && t.Kind() != reflect.Interface {
		p.Registry().RegisterName(TypeName(t), reflect.New(t).Elem().Interface())
	}
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		registerDeep(p, t.Elem(), seen)
	case reflect.Map:
		registerDeep(p, t.Key(), seen)
		registerDeep(p, t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				registerDeep(p, t.Field(i).Type, seen)
			}
		}
	}
}

// rtOne marshals v and unmarshals it into a fresh value of the same type.
func rtOne(t *testing.T, p *Pickler, v any) any {
	t.Helper()
	registerDeep(p, reflect.TypeOf(v), map[reflect.Type]bool{})
	b, err := p.Marshal(nil, v)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := p.Unmarshal(b, out.Interface()); err != nil {
		t.Fatalf("Unmarshal(%#v): %v", v, err)
	}
	return out.Elem().Interface()
}

func TestScalarRoundTrips(t *testing.T) {
	p := newTestPickler()
	vals := []any{
		true, false,
		int(-42), int8(-8), int16(300), int32(-70000), int64(math.MinInt64),
		uint(42), uint8(255), uint16(65535), uint32(1 << 30), uint64(math.MaxUint64),
		float32(1.5), float64(math.Pi),
		complex64(complex(1, 2)), complex128(complex(-3.5, 4.5)),
		"hello, 世界", "",
	}
	for _, v := range vals {
		if got := rtOne(t, p, v); got != v {
			t.Errorf("round trip %#v: got %#v", v, got)
		}
	}
}

func TestSliceRoundTrips(t *testing.T) {
	p := newTestPickler()
	cases := []any{
		[]int{1, 2, 3},
		[]int{},
		[]int(nil),
		[]byte("raw bytes"),
		[]byte{},
		[]byte(nil),
		[]string{"a", "", "c"},
		[][]int{{1}, nil, {2, 3}},
		[]float64{math.Inf(1), 0, -0.5},
	}
	for _, v := range cases {
		got := rtOne(t, p, v)
		if !reflect.DeepEqual(got, v) {
			// nil vs empty: the codec distinguishes them; DeepEqual agrees.
			t.Errorf("round trip %#v: got %#v", v, got)
		}
	}
}

func TestNilVsEmptyPreserved(t *testing.T) {
	p := newTestPickler()
	type S struct {
		A []int
		B []int
		M map[string]int
		N map[string]int
	}
	in := S{A: []int{}, M: map[string]int{}}
	got := rtOne(t, p, in).(S)
	if got.A == nil || got.B != nil {
		t.Errorf("slice nilness lost: %#v", got)
	}
	if got.M == nil || got.N != nil {
		t.Errorf("map nilness lost: %#v", got)
	}
}

func TestArrayAndMapRoundTrips(t *testing.T) {
	p := newTestPickler()
	cases := []any{
		[3]int{7, 8, 9},
		[0]string{},
		[2][2]byte{{1, 2}, {3, 4}},
		map[string]int{"a": 1, "b": 2},
		map[int]string{},
		map[string][]int{"xs": {1, 2}},
	}
	for _, v := range cases {
		got := rtOne(t, p, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v: got %#v", v, got)
		}
	}
}

type inner struct {
	Label string
	N     int
}

type outer struct {
	Name     string
	Weight   float64
	In       inner
	Ptr      *inner
	Tags     []string
	Attrs    map[string]int64
	hidden   int // unexported: skipped
	Excluded int `pickle:"-"`
}

func TestStructRoundTrip(t *testing.T) {
	p := newTestPickler()
	in := outer{
		Name:     "thing",
		Weight:   2.25,
		In:       inner{Label: "i", N: 4},
		Ptr:      &inner{Label: "p", N: 5},
		Tags:     []string{"x", "y"},
		Attrs:    map[string]int64{"k": 9},
		hidden:   99,
		Excluded: 7,
	}
	got := rtOne(t, p, in).(outer)
	if got.hidden != 0 || got.Excluded != 0 {
		t.Errorf("skipped fields transmitted: %#v", got)
	}
	want := in
	want.hidden = 0
	want.Excluded = 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v want %#v", got, want)
	}
}

func TestPointerSharingPreserved(t *testing.T) {
	p := newTestPickler()
	shared := &inner{Label: "s", N: 1}
	type pair struct{ A, B *inner }
	in := pair{A: shared, B: shared}
	got := rtOne(t, p, in).(pair)
	if got.A != got.B {
		t.Fatal("sharing lost: A and B decode to distinct pointers")
	}
	if got.A == shared {
		t.Fatal("decoded pointer aliases the original")
	}
	if *got.A != *shared {
		t.Fatalf("value mismatch: %#v", *got.A)
	}
}

func TestDistinctPointersStayDistinct(t *testing.T) {
	p := newTestPickler()
	type pair struct{ A, B *inner }
	in := pair{A: &inner{N: 1}, B: &inner{N: 1}}
	got := rtOne(t, p, in).(pair)
	if got.A == got.B {
		t.Fatal("distinct pointers merged")
	}
}

type node struct {
	V    int
	Next *node
}

func TestCycleThroughPointers(t *testing.T) {
	p := newTestPickler()
	a := &node{V: 1}
	b := &node{V: 2, Next: a}
	a.Next = b
	out := rtOne(t, p, a).(*node)
	if out.V != 1 || out.Next.V != 2 || out.Next.Next != out {
		t.Fatalf("cycle not preserved: %v -> %v -> %v", out.V, out.Next.V, out.Next.Next.V)
	}
}

func TestMapSharingPreserved(t *testing.T) {
	p := newTestPickler()
	m := map[string]int{"k": 1}
	type pair struct{ A, B map[string]int }
	got := rtOne(t, p, pair{A: m, B: m}).(pair)
	got.A["new"] = 2
	if got.B["new"] != 2 {
		t.Fatal("map sharing lost")
	}
}

func TestStructAndFirstFieldDoNotAlias(t *testing.T) {
	// &s and &s.X have the same address; the sharing table must keep them
	// apart because their types differ.
	p := newTestPickler()
	type X struct{ N int }
	type S struct{ X X }
	s := &S{X: X{N: 5}}
	type pair struct {
		PS *S
		PX *X
	}
	in := pair{PS: s, PX: &s.X}
	got := rtOne(t, p, in).(pair)
	if got.PS.X.N != 5 || got.PX.N != 5 {
		t.Fatalf("values lost: %#v", got)
	}
}

func TestSelfReferentialSliceErrors(t *testing.T) {
	p := newTestPickler()
	type S []any
	s := make(S, 1)
	s[0] = s
	p.Registry().Register(S{})
	_, err := p.Marshal(nil, s)
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("want ErrTooDeep, got %v", err)
	}
}

func TestInterfaceValuesInAny(t *testing.T) {
	p := newTestPickler()
	p.Registry().Register(inner{})
	p.Registry().Register(&inner{})
	type box struct{ V any }
	cases := []box{
		{V: nil},
		{V: int(5)},
		{V: "str"},
		{V: inner{Label: "x", N: 2}},
		{V: &inner{Label: "y", N: 3}},
		{V: []int{1, 2}},
		{V: map[string]any{"n": int64(1)}},
	}
	for _, in := range cases {
		got := rtOne(t, p, in).(box)
		if !reflect.DeepEqual(got, in) {
			t.Errorf("any round trip %#v: got %#v", in, got)
		}
	}
}

func TestUnregisteredDynamicTypeErrors(t *testing.T) {
	p := newTestPickler()
	type secret struct{ N int }
	type box struct{ V any }
	_, err := p.Marshal(nil, box{V: secret{N: 1}})
	if !errors.Is(err, ErrUnregistered) {
		t.Fatalf("want ErrUnregistered, got %v", err)
	}
}

func TestRegistrySynthesizesComposites(t *testing.T) {
	// Encoder side registers inner; decoder side registers inner too but
	// never []*inner — the registry must synthesize it from the name.
	enc := New(NewRegistry(), nil)
	enc.Registry().Register(inner{})
	b, err := enc.Marshal(nil, any([]*inner{{N: 1}, nil}))
	if err != nil {
		t.Fatal(err)
	}
	dec := New(NewRegistry(), nil)
	dec.Registry().Register(inner{})
	var out any
	if err := dec.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	xs, ok := out.([]*inner)
	if !ok || len(xs) != 2 || xs[0].N != 1 || xs[1] != nil {
		t.Fatalf("got %#v", out)
	}
}

func TestTupleMarshal(t *testing.T) {
	p := newTestPickler()
	b, err := p.Marshal(nil, int64(7), "s", []byte{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	var (
		i  int64
		s  string
		bs []byte
		ok bool
	)
	if err := p.Unmarshal(b, &i, &s, &bs, &ok); err != nil {
		t.Fatal(err)
	}
	if i != 7 || s != "s" || len(bs) != 1 || bs[0] != 1 || !ok {
		t.Fatalf("got %v %q %v %v", i, s, bs, ok)
	}
}

func TestTupleArityMismatch(t *testing.T) {
	p := newTestPickler()
	b, err := p.Marshal(nil, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var x int
	if err := p.Unmarshal(b, &x); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestLosslessConversionOnDecode(t *testing.T) {
	p := newTestPickler()
	b, err := p.Marshal(nil, int(300))
	if err != nil {
		t.Fatal(err)
	}
	var wide int64
	if err := p.Unmarshal(b, &wide); err != nil || wide != 300 {
		t.Fatalf("int->int64: %v %v", wide, err)
	}
	var narrow int8
	if err := p.Unmarshal(b, &narrow); err == nil {
		t.Fatalf("int(300)->int8 should overflow, got %v", narrow)
	}
	var u uint16
	if err := p.Unmarshal(b, &u); err != nil || u != 300 {
		t.Fatalf("int->uint16: %v %v", u, err)
	}
	bneg, _ := p.Marshal(nil, -1)
	var uu uint32
	if err := p.Unmarshal(bneg, &uu); err == nil {
		t.Fatalf("-1 -> uint32 should fail, got %v", uu)
	}
}

func TestTimeAndDuration(t *testing.T) {
	p := newTestPickler()
	now := time.Date(2026, 7, 4, 12, 30, 0, 123456789, time.UTC)
	got := rtOne(t, p, now).(time.Time)
	if !got.Equal(now) {
		t.Fatalf("time: got %v want %v", got, now)
	}
	d := 90 * time.Second
	if got := rtOne(t, p, d).(time.Duration); got != d {
		t.Fatalf("duration: got %v", got)
	}
}

func TestUnsupportedTypes(t *testing.T) {
	p := newTestPickler()
	if _, err := p.Marshal(nil, func() {}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("func: got %v", err)
	}
	if _, err := p.Marshal(nil, make(chan int)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("chan: got %v", err)
	}
}

func TestCorruptInputs(t *testing.T) {
	p := newTestPickler()
	registerDeep(p, reflect.TypeOf(outer{}), map[reflect.Type]bool{})
	b, err := p.Marshal(nil, outer{Name: "x", Ptr: &inner{N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly, never panic.
	for i := 0; i < len(b); i++ {
		var out outer
		_ = p.Unmarshal(b[:i], &out)
	}
	// Random corruption of each byte must fail cleanly or decode to
	// something, never panic.
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xff
		var out outer
		_ = p.Unmarshal(mut, &out)
	}
}

func TestBogusBackReference(t *testing.T) {
	p := newTestPickler()
	registerDeep(p, reflect.TypeOf(&inner{}), map[reflect.Type]bool{})
	// Hand-craft a pickle with a dangling back-reference: 1 value, type
	// *inner, tagRef id 99.
	good, err := p.Marshal(nil, &inner{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = good
	var out *inner
	// tuple len 1, interface tagDef, name, ptr tagRef, id 99
	b, err := p.Marshal(nil, &inner{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find the tagDef byte of the pointer (after the type name) and flip
	// it to tagRef followed by a large id. Easier: decode must reject out
	// of range ids, exercised via crafted two-pointer pickle where second
	// ref id is corrupted by truncation above; here just assert no panic.
	_ = p.Unmarshal(b, &out)
}

func TestMarshalIntoProvidedBuffer(t *testing.T) {
	p := newTestPickler()
	buf := make([]byte, 0, 256)
	b, err := p.Marshal(buf, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if cap(b) != cap(buf) {
		t.Fatal("buffer not reused")
	}
}

func TestConcurrentPicklerUse(t *testing.T) {
	p := newTestPickler()
	registerDeep(p, reflect.TypeOf(outer{}), map[reflect.Type]bool{})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				in := outer{Name: "n", In: inner{N: g*1000 + i}, Ptr: &inner{N: i}}
				b, err := p.Marshal(nil, in)
				if err != nil {
					done <- err
					return
				}
				var out outer
				if err := p.Unmarshal(b, &out); err != nil {
					done <- err
					return
				}
				if out.In.N != in.In.N {
					done <- errors.New("value mismatch")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
