package pickle

import (
	"fmt"
	"reflect"
	"testing"

	"netobjects/internal/wire"
)

// fakeRef is a stand-in for the runtime's network reference handle.
type fakeRef struct {
	W wire.WireRep
}

// remoteThing is a user-level remote interface in these tests: any value
// implementing it is passed by reference.
type remoteThing interface {
	Thing() string
}

// concreteThing is an owner-side implementation of remoteThing.
type concreteThing struct{ name string }

func (c *concreteThing) Thing() string { return c.name }

// fakeRefs implements NetRefs: it handles *fakeRef and the remoteThing
// interface, simulating auto-export of concrete implementations.
type fakeRefs struct {
	exported map[*concreteThing]wire.WireRep
	imported []wire.WireRep
	nextIx   uint64
}

func newFakeRefs() *fakeRefs {
	return &fakeRefs{exported: make(map[*concreteThing]wire.WireRep), nextIx: wire.FirstUserIndex}
}

var (
	fakeRefType    = reflect.TypeOf((*fakeRef)(nil))
	remoteIfaceTyp = reflect.TypeOf((*remoteThing)(nil)).Elem()
)

func (f *fakeRefs) Handles(t reflect.Type) bool {
	return t == fakeRefType || t == remoteIfaceTyp || t.Implements(remoteIfaceTyp)
}

func (f *fakeRefs) ToWire(_ any, v reflect.Value) (wire.WireRep, error) {
	switch x := v.Interface().(type) {
	case *fakeRef:
		if x == nil {
			return wire.WireRep{}, nil
		}
		return x.W, nil
	case *concreteThing:
		w, ok := f.exported[x]
		if !ok {
			w = wire.WireRep{Owner: 1, Endpoints: []string{"inmem:t"}, Index: f.nextIx}
			f.nextIx++
			f.exported[x] = w
		}
		return w, nil
	default:
		return wire.WireRep{}, fmt.Errorf("unexpected ref value %v", v.Type())
	}
}

func (f *fakeRefs) FromWire(_ any, w wire.WireRep, t reflect.Type) (reflect.Value, error) {
	f.imported = append(f.imported, w)
	if t == remoteIfaceTyp {
		// Simulate stub wrapping for the remote interface.
		return reflect.ValueOf(&concreteThing{name: fmt.Sprintf("stub-%d", w.Index)}), nil
	}
	return reflect.ValueOf(&fakeRef{W: w}), nil
}

func TestNetRefStaticType(t *testing.T) {
	refs := newFakeRefs()
	p := New(NewRegistry(), refs)
	in := &fakeRef{W: wire.WireRep{Owner: 7, Endpoints: []string{"tcp:h:1"}, Index: 3}}
	b, err := p.Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out *fakeRef
	if err := p.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.W.Owner != 7 || out.W.Index != 3 {
		t.Fatalf("got %+v", out.W)
	}
}

func TestNetRefInsideStructAndSlice(t *testing.T) {
	refs := newFakeRefs()
	p := New(NewRegistry(), refs)
	type carrier struct {
		Name string
		Ref  *fakeRef
		More []*fakeRef
	}
	p.Registry().Register(carrier{})
	in := carrier{
		Name: "c",
		Ref:  &fakeRef{W: wire.WireRep{Owner: 1, Index: 10}},
		More: []*fakeRef{{W: wire.WireRep{Owner: 2, Index: 20}}, nil},
	}
	b, err := p.Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out carrier
	if err := p.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ref.W.Index != 10 || out.More[0].W.Index != 20 {
		t.Fatalf("got %+v", out)
	}
	// nil refs round-trip as refs with zero wireRep; the runtime maps those
	// back to nil. Here the fake hook produces a non-nil ref with zero rep.
	if out.More[1] == nil || !out.More[1].W.IsZero() {
		t.Fatalf("nil ref: got %+v", out.More[1])
	}
}

func TestNetRefAutoExportOfInterfaceValue(t *testing.T) {
	refs := newFakeRefs()
	p := New(NewRegistry(), refs)
	impl := &concreteThing{name: "server-side"}
	// Marshal at static type remoteThing: the hook should auto-export.
	vals := []reflect.Value{reflect.ValueOf(&impl).Elem().Convert(remoteIfaceTyp)}
	b, err := p.MarshalValues(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs.exported) != 1 {
		t.Fatalf("auto-export did not happen: %d", len(refs.exported))
	}
	out, err := p.UnmarshalValues(b, []reflect.Type{remoteIfaceTyp})
	if err != nil {
		t.Fatal(err)
	}
	got := out[0].Interface().(remoteThing)
	if got.Thing() != "stub-2" {
		t.Fatalf("got %q", got.Thing())
	}
}

func TestNetRefDynamicInsideAny(t *testing.T) {
	refs := newFakeRefs()
	p := New(NewRegistry(), refs)
	in := any(&fakeRef{W: wire.WireRep{Owner: 9, Index: 9}})
	b, err := p.Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out any
	if err := p.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	ref, ok := out.(*fakeRef)
	if !ok || ref.W.Owner != 9 {
		t.Fatalf("got %#v", out)
	}
}

func TestNetRefWithoutHookErrors(t *testing.T) {
	refs := newFakeRefs()
	enc := New(NewRegistry(), refs)
	b, err := enc.Marshal(nil, any(&fakeRef{W: wire.WireRep{Owner: 1, Index: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	dec := New(NewRegistry(), nil)
	var out any
	if err := dec.Unmarshal(b, &out); err == nil {
		t.Fatal("want error decoding net ref without hook")
	}
}
