package pickle

import (
	"reflect"
	"testing"
	"testing/quick"
)

// quickStruct exercises most codec paths with quick-generated values.
type quickStruct struct {
	B   bool
	I   int64
	U   uint32
	F   float64
	S   string
	Bs  []byte
	Is  []int
	M   map[string]int16
	P   *int64
	Arr [3]uint8
}

func TestQuickStructRoundTrip(t *testing.T) {
	p := newTestPickler()
	registerDeep(p, reflect.TypeOf(quickStruct{}), map[reflect.Type]bool{})
	f := func(in quickStruct) bool {
		b, err := p.Marshal(nil, in)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var out quickStruct
		if err := p.Unmarshal(b, &out); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNestedMaps(t *testing.T) {
	p := newTestPickler()
	f := func(in map[string]map[int64]string) bool {
		b, err := p.Marshal(nil, in)
		if err != nil {
			return false
		}
		var out map[string]map[int64]string
		if err := p.Unmarshal(b, &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesNeverPanicOnDecode(t *testing.T) {
	p := newTestPickler()
	f := func(junk []byte) bool {
		var out any
		_ = p.Unmarshal(junk, &out) // must not panic
		var s quickStruct
		_ = p.Unmarshal(junk, &s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringsRoundTrip(t *testing.T) {
	p := newTestPickler()
	f := func(ss []string) bool {
		b, err := p.Marshal(nil, ss)
		if err != nil {
			return false
		}
		var out []string
		if err := p.Unmarshal(b, &out); err != nil {
			return false
		}
		return reflect.DeepEqual(ss, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
