package pickle

import (
	"encoding"
	"fmt"
	"reflect"
)

// Node tags for reference-like positions (pointers, maps, interfaces).
const (
	tagNil = 0 // nil value
	tagDef = 1 // first occurrence: definition follows
	tagRef = 2 // back-reference to an earlier definition, by id
	tagNet = 3 // network object reference: a wireRep follows
)

type ptrKey struct {
	p uintptr
	t reflect.Type
}

var (
	binMarshalerType   = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()
	binUnmarshalerType = reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem()
)

// buildCodec compiles the encoder and decoder for t. It runs with buildMu
// held; child lookups go through codecForLocked.
func (p *Pickler) buildCodec(t reflect.Type) (*typeCodec, error) {
	// Network references take precedence over every structural rule: a
	// type the runtime claims is marshaled as a wireRep no matter what it
	// looks like.
	if p.refs != nil && p.refs.Handles(t) {
		return p.refCodec(t), nil
	}
	switch t.Kind() {
	case reflect.Bool:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.Bool(v.Bool()); return nil },
			dec: func(st *decState, v reflect.Value) error { v.SetBool(st.d.Bool()); return nil },
		}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.Int(v.Int()); return nil },
			dec: func(st *decState, v reflect.Value) error {
				n := st.d.Int()
				if v.OverflowInt(n) {
					return fmt.Errorf("%w: %d overflows %v", ErrCorrupt, n, v.Type())
				}
				v.SetInt(n)
				return nil
			},
		}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.Uint(v.Uint()); return nil },
			dec: func(st *decState, v reflect.Value) error {
				n := st.d.Uint()
				if v.OverflowUint(n) {
					return fmt.Errorf("%w: %d overflows %v", ErrCorrupt, n, v.Type())
				}
				v.SetUint(n)
				return nil
			},
		}, nil
	case reflect.Float32, reflect.Float64:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.Float(v.Float()); return nil },
			dec: func(st *decState, v reflect.Value) error { v.SetFloat(st.d.Float()); return nil },
		}, nil
	case reflect.Complex64, reflect.Complex128:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.Complex(v.Complex()); return nil },
			dec: func(st *decState, v reflect.Value) error { v.SetComplex(st.d.Complex()); return nil },
		}, nil
	case reflect.String:
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error { st.e.String(v.String()); return nil },
			dec: func(st *decState, v reflect.Value) error { v.SetString(st.d.String()); return nil },
		}, nil
	case reflect.Slice:
		return p.sliceCodec(t)
	case reflect.Array:
		return p.arrayCodec(t)
	case reflect.Map:
		return p.mapCodec(t)
	case reflect.Struct:
		// Types with binary marshaling (time.Time and friends) pickle as
		// opaque bytes; this is also the hook for user types with hidden
		// state.
		if t.Implements(binMarshalerType) && reflect.PointerTo(t).Implements(binUnmarshalerType) {
			return binaryCodec(t), nil
		}
		return p.structCodec(t)
	case reflect.Pointer:
		return p.pointerCodec(t)
	case reflect.Interface:
		return p.interfaceCodec(t)
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, t)
	}
}

// refCodec pickles values of a network-reference type as bare wireReps.
func (p *Pickler) refCodec(t reflect.Type) *typeCodec {
	refs := p.refs
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			w, err := refs.ToWire(st.session, v)
			if err != nil {
				return err
			}
			st.e.WireRep(w)
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			w := st.d.WireRep()
			if err := st.d.Err(); err != nil {
				return err
			}
			rv, err := refs.FromWire(st.session, w, t)
			if err != nil {
				return err
			}
			return convertAssign(v, rv)
		},
	}
}

// binaryCodec pickles a type through its encoding.BinaryMarshaler
// implementation.
func binaryCodec(t reflect.Type) *typeCodec {
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			b, err := v.Interface().(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				return fmt.Errorf("pickle: %v.MarshalBinary: %w", t, err)
			}
			st.e.BytesField(b)
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			b := st.d.BytesField()
			if err := st.d.Err(); err != nil {
				return err
			}
			if err := v.Addr().Interface().(encoding.BinaryUnmarshaler).UnmarshalBinary(b); err != nil {
				return fmt.Errorf("pickle: %v.UnmarshalBinary: %w", t, err)
			}
			return nil
		},
	}
}

func (p *Pickler) sliceCodec(t reflect.Type) (*typeCodec, error) {
	elem := t.Elem()
	// Fast path for byte slices: one length-prefixed blob.
	if elem.Kind() == reflect.Uint8 && (p.refs == nil || !p.refs.Handles(elem)) {
		return &typeCodec{
			enc: func(st *encState, v reflect.Value) error {
				if v.IsNil() {
					st.e.Uint(tagNil)
					return nil
				}
				st.e.Uint(tagDef)
				st.e.BytesField(v.Bytes())
				return nil
			},
			dec: func(st *decState, v reflect.Value) error {
				switch tag := st.d.Uint(); tag {
				case tagNil:
					v.SetZero()
					return st.d.Err()
				case tagDef:
					b := st.d.BytesField()
					if err := st.d.Err(); err != nil {
						return err
					}
					// BytesField aliases the input buffer; copy into
					// freshly owned storage.
					nb := reflect.MakeSlice(t, len(b), len(b))
					reflect.Copy(nb, reflect.ValueOf(b))
					v.Set(nb)
					return nil
				default:
					return fmt.Errorf("%w: slice tag %d", ErrCorrupt, tag)
				}
			},
		}, nil
	}
	ec, err := p.codecForLocked(elem)
	if err != nil {
		return nil, err
	}
	minSize := minEncodedSize(elem)
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if v.IsNil() {
				st.e.Uint(tagNil)
				return nil
			}
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			st.e.Uint(tagDef)
			n := v.Len()
			st.e.Uint(uint64(n))
			for i := 0; i < n; i++ {
				if err := ec.enc(st, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			switch tag := st.d.Uint(); tag {
			case tagNil:
				v.SetZero()
				return st.d.Err()
			case tagDef:
				n := st.d.Uint()
				if err := st.d.Err(); err != nil {
					return err
				}
				if minSize > 0 && n > uint64(st.d.Len()) {
					return fmt.Errorf("%w: slice claims %d elements with %d bytes left", ErrCorrupt, n, st.d.Len())
				}
				if err := st.push(); err != nil {
					return err
				}
				defer st.pop()
				nv := reflect.MakeSlice(t, int(n), int(n))
				for i := 0; i < int(n); i++ {
					if err := ec.dec(st, nv.Index(i)); err != nil {
						return err
					}
				}
				v.Set(nv)
				return nil
			default:
				return fmt.Errorf("%w: slice tag %d", ErrCorrupt, tag)
			}
		},
	}, nil
}

func (p *Pickler) arrayCodec(t reflect.Type) (*typeCodec, error) {
	ec, err := p.codecForLocked(t.Elem())
	if err != nil {
		return nil, err
	}
	n := t.Len()
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			for i := 0; i < n; i++ {
				if err := ec.enc(st, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			for i := 0; i < n; i++ {
				if err := ec.dec(st, v.Index(i)); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

func (p *Pickler) mapCodec(t reflect.Type) (*typeCodec, error) {
	kc, err := p.codecForLocked(t.Key())
	if err != nil {
		return nil, err
	}
	vc, err := p.codecForLocked(t.Elem())
	if err != nil {
		return nil, err
	}
	minSize := minEncodedSize(t.Key()) + minEncodedSize(t.Elem())
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if v.IsNil() {
				st.e.Uint(tagNil)
				return nil
			}
			key := ptrKey{v.Pointer(), t}
			if id, ok := st.ptrID[key]; ok {
				st.e.Uint(tagRef)
				st.e.Uint(id)
				return nil
			}
			st.ptrID[key] = st.nextID
			st.nextID++
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			st.e.Uint(tagDef)
			st.e.Uint(uint64(v.Len()))
			it := v.MapRange()
			for it.Next() {
				if err := kc.enc(st, it.Key()); err != nil {
					return err
				}
				if err := vc.enc(st, it.Value()); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			switch tag := st.d.Uint(); tag {
			case tagNil:
				v.SetZero()
				return st.d.Err()
			case tagRef:
				return st.backref(v, t)
			case tagDef:
				n := st.d.Uint()
				if err := st.d.Err(); err != nil {
					return err
				}
				if minSize > 0 && n > uint64(st.d.Len()) {
					return fmt.Errorf("%w: map claims %d entries with %d bytes left", ErrCorrupt, n, st.d.Len())
				}
				if err := st.push(); err != nil {
					return err
				}
				defer st.pop()
				m := reflect.MakeMapWithSize(t, int(n))
				v.Set(m)
				st.shared = append(st.shared, m)
				kv := reflect.New(t.Key()).Elem()
				vv := reflect.New(t.Elem()).Elem()
				for i := uint64(0); i < n; i++ {
					kv.SetZero()
					vv.SetZero()
					if err := kc.dec(st, kv); err != nil {
						return err
					}
					if err := vc.dec(st, vv); err != nil {
						return err
					}
					m.SetMapIndex(kv, vv)
				}
				return nil
			default:
				return fmt.Errorf("%w: map tag %d", ErrCorrupt, tag)
			}
		},
	}, nil
}

func (p *Pickler) structCodec(t reflect.Type) (*typeCodec, error) {
	type fieldCodec struct {
		index int
		c     *typeCodec
	}
	var fields []fieldCodec
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("pickle") == "-" {
			continue
		}
		fc, err := p.codecForLocked(f.Type)
		if err != nil {
			return nil, fmt.Errorf("field %s.%s: %w", t, f.Name, err)
		}
		fields = append(fields, fieldCodec{index: i, c: fc})
	}
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			for _, f := range fields {
				if err := f.c.enc(st, v.Field(f.index)); err != nil {
					return err
				}
			}
			return nil
		},
		dec: func(st *decState, v reflect.Value) error {
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			for _, f := range fields {
				if err := f.c.dec(st, v.Field(f.index)); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

func (p *Pickler) pointerCodec(t reflect.Type) (*typeCodec, error) {
	ec, err := p.codecForLocked(t.Elem())
	if err != nil {
		return nil, err
	}
	elem := t.Elem()
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if v.IsNil() {
				st.e.Uint(tagNil)
				return nil
			}
			key := ptrKey{v.Pointer(), t}
			if id, ok := st.ptrID[key]; ok {
				st.e.Uint(tagRef)
				st.e.Uint(id)
				return nil
			}
			st.ptrID[key] = st.nextID
			st.nextID++
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			st.e.Uint(tagDef)
			return ec.enc(st, v.Elem())
		},
		dec: func(st *decState, v reflect.Value) error {
			switch tag := st.d.Uint(); tag {
			case tagNil:
				v.SetZero()
				return st.d.Err()
			case tagRef:
				return st.backref(v, t)
			case tagDef:
				if err := st.push(); err != nil {
					return err
				}
				defer st.pop()
				np := reflect.New(elem)
				v.Set(np)
				// Record the pointer before decoding the pointee so cycles
				// resolve to it.
				st.shared = append(st.shared, np)
				return ec.dec(st, np.Elem())
			default:
				return fmt.Errorf("%w: pointer tag %d", ErrCorrupt, tag)
			}
		},
	}, nil
}

func (p *Pickler) interfaceCodec(t reflect.Type) (*typeCodec, error) {
	refs := p.refs
	reg := p.reg
	return &typeCodec{
		enc: func(st *encState, v reflect.Value) error {
			if v.IsNil() {
				st.e.Uint(tagNil)
				return nil
			}
			dv := v.Elem()
			dt := dv.Type()
			if refs != nil && refs.Handles(dt) {
				w, err := refs.ToWire(st.session, dv)
				if err != nil {
					return err
				}
				st.e.Uint(tagNet)
				st.e.WireRep(w)
				return nil
			}
			name, err := reg.nameOf(dt)
			if err != nil {
				return err
			}
			c, err := st.p.codecFor(dt)
			if err != nil {
				return err
			}
			if err := st.push(); err != nil {
				return err
			}
			defer st.pop()
			st.e.Uint(tagDef)
			st.e.String(name)
			return c.enc(st, dv)
		},
		dec: func(st *decState, v reflect.Value) error {
			switch tag := st.d.Uint(); tag {
			case tagNil:
				v.SetZero()
				return st.d.Err()
			case tagNet:
				w := st.d.WireRep()
				if err := st.d.Err(); err != nil {
					return err
				}
				if refs == nil {
					return ErrNoRefs
				}
				rv, err := refs.FromWire(st.session, w, t)
				if err != nil {
					return err
				}
				return convertAssign(v, rv)
			case tagDef:
				name := st.d.String()
				if err := st.d.Err(); err != nil {
					return err
				}
				dt, err := reg.typeOf(name)
				if err != nil {
					return err
				}
				c, err := st.p.codecFor(dt)
				if err != nil {
					return err
				}
				if err := st.push(); err != nil {
					return err
				}
				defer st.pop()
				dv := reflect.New(dt).Elem()
				if err := c.dec(st, dv); err != nil {
					return err
				}
				return convertAssign(v, dv)
			default:
				return fmt.Errorf("%w: interface tag %d", ErrCorrupt, tag)
			}
		},
	}, nil
}

func (st *encState) push() error {
	st.depth++
	if st.depth > MaxDepth {
		return ErrTooDeep
	}
	return nil
}

func (st *encState) pop() { st.depth-- }

func (st *decState) push() error {
	st.depth++
	if st.depth > MaxDepth {
		return ErrTooDeep
	}
	return nil
}

func (st *decState) pop() { st.depth-- }

// backref resolves a tagRef back-reference into v, checking that the
// referenced definition has the expected type.
func (st *decState) backref(v reflect.Value, want reflect.Type) error {
	id := st.d.Uint()
	if err := st.d.Err(); err != nil {
		return err
	}
	if id >= uint64(len(st.shared)) {
		return fmt.Errorf("%w: back-reference %d of %d", ErrCorrupt, id, len(st.shared))
	}
	sv := st.shared[id]
	if sv.Type() != want {
		return fmt.Errorf("%w: back-reference %d has type %v, want %v", ErrCorrupt, id, sv.Type(), want)
	}
	v.Set(sv)
	return nil
}

// minEncodedSize reports a lower bound on the encoded size of a value of
// type t, used to sanity-check attacker-controlled element counts. Only
// zero-size types (empty structs, arrays of them) can encode to zero bytes.
func minEncodedSize(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("pickle") == "-" {
				continue
			}
			if minEncodedSize(f.Type) > 0 {
				return 1
			}
		}
		return 0
	case reflect.Array:
		if t.Len() == 0 {
			return 0
		}
		return minEncodedSize(t.Elem())
	default:
		return 1
	}
}

// ConvertAssign sets dst (which must be settable) to src, applying
// lossless conversions when the types differ: numeric widening/narrowing
// that preserves the value, and string/byte-slice conversions. It is how a
// pickled int64 lands in an int parameter on the receiving side; the
// runtime also uses it to bind dynamically decoded arguments.
func ConvertAssign(dst, src reflect.Value) error {
	return convertAssign(dst, src)
}

// convertAssign implements ConvertAssign.
func convertAssign(dst, src reflect.Value) error {
	dt := dst.Type()
	if src.Type().AssignableTo(dt) {
		dst.Set(src)
		return nil
	}
	if src.Type().ConvertibleTo(dt) {
		conv := src.Convert(dt)
		// Verify the round trip for numeric kinds so silent truncation
		// cannot occur.
		if isNumeric(src.Kind()) && isNumeric(conv.Kind()) {
			back := conv.Convert(src.Type())
			if !reflect.DeepEqual(back.Interface(), src.Interface()) {
				return fmt.Errorf("pickle: value %v does not fit in %v", src.Interface(), dt)
			}
		}
		dst.Set(conv)
		return nil
	}
	return fmt.Errorf("pickle: cannot assign %v to %v", src.Type(), dt)
}

func isNumeric(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	}
	return false
}
