package pickle

import (
	"hash/fnv"
	"reflect"
	"strings"
)

// Fingerprint computes a stable hash of a type's method set: method names
// plus parameter and result type names, in declaration order. Stubs embed
// the fingerprint of the interface they were generated from in every call,
// and the dispatcher rejects calls whose fingerprint does not match the
// exported object's — the network objects analogue of stub version
// checking. A zero fingerprint in a call means "unchecked".
func Fingerprint(t reflect.Type) uint64 {
	h := fnv.New64a()
	h.Write([]byte(describeMethodSet(t)))
	fp := h.Sum64()
	if fp == 0 {
		// Zero is reserved for "unchecked"; remap the (vanishingly
		// unlikely) colliding hash.
		fp = 1
	}
	return fp
}

// describeMethodSet renders the method set of t canonically. For interface
// types the receiver is absent from the signature; for concrete types the
// exported method set is used, skipping the receiver parameter, so a
// concrete implementation and the interface it satisfies produce the same
// description for their shared methods.
func describeMethodSet(t reflect.Type) string {
	var b strings.Builder
	isIface := t.Kind() == reflect.Interface
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if !m.IsExported() {
			continue
		}
		b.WriteString(m.Name)
		b.WriteByte('(')
		ft := m.Type
		first := 0
		if !isIface {
			first = 1 // skip the receiver
		}
		for j := first; j < ft.NumIn(); j++ {
			if j > first {
				b.WriteByte(',')
			}
			b.WriteString(TypeName(ft.In(j)))
		}
		b.WriteString(")(")
		for j := 0; j < ft.NumOut(); j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(TypeName(ft.Out(j)))
		}
		b.WriteString(");")
	}
	return b.String()
}
