package pickle

import (
	"reflect"
	"testing"
)

type ifaceA interface {
	Get(key string) (int, error)
	Put(key string, v int) error
}

type ifaceASame interface {
	Get(key string) (int, error)
	Put(key string, v int) error
}

type ifaceB interface {
	Get(key string) (int64, error) // differs in result type
	Put(key string, v int) error
}

type implA struct{}

func (implA) Get(string) (int, error)     { return 0, nil }
func (implA) Put(string, int) error       { return nil }
func (implA) extraUnexported() (int, int) { return 0, 0 }

func ifType[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

func TestFingerprintStability(t *testing.T) {
	a1 := Fingerprint(ifType[ifaceA]())
	a2 := Fingerprint(ifType[ifaceA]())
	if a1 != a2 {
		t.Fatal("fingerprint not deterministic")
	}
	if a1 == 0 {
		t.Fatal("zero fingerprint is reserved")
	}
}

func TestFingerprintStructuralEquality(t *testing.T) {
	if Fingerprint(ifType[ifaceA]()) != Fingerprint(ifType[ifaceASame]()) {
		t.Fatal("structurally identical interfaces should fingerprint equal")
	}
}

func TestFingerprintDetectsSignatureChange(t *testing.T) {
	if Fingerprint(ifType[ifaceA]()) == Fingerprint(ifType[ifaceB]()) {
		t.Fatal("different signatures should fingerprint differently")
	}
}

func TestFingerprintConcreteMatchesInterface(t *testing.T) {
	// A concrete implementation whose exported method set equals the
	// interface's must produce the same fingerprint, so dispatchers can
	// check a stub fingerprint against the concrete object.
	got := Fingerprint(reflect.TypeOf(implA{}))
	want := Fingerprint(ifType[ifaceA]())
	if got != want {
		t.Fatalf("concrete %x != interface %x", got, want)
	}
}

func TestFingerprintEmptyInterface(t *testing.T) {
	if Fingerprint(ifType[any]()) == 0 {
		t.Fatal("empty method set must still fingerprint non-zero")
	}
}
