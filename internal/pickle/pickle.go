// Package pickle implements the general-purpose value marshaling layer of
// the network objects runtime, playing the role of the Modula-3 pickles
// package in the original system.
//
// A pickle encodes an arbitrary Go data graph: scalars, strings, arrays,
// slices, maps, structs (exported fields), pointers and interfaces.
// Sharing between pointers and maps is preserved — if two fields point at
// the same value, they still do after a round trip — and cyclic structures
// reachable through pointers are supported. Interface values carry the name
// of their dynamic type, which must be registered with the same name on
// both sides (see Register).
//
// Network objects are marshaled by reference rather than by value: the
// pickler is configured with a NetRefs hook supplied by the runtime, and
// any value the hook claims is encoded as a wireRep. The pickler itself has
// no knowledge of spaces or surrogates; the hook keeps the layering of the
// original system, where the pickles package calls out to the network
// object runtime for "special" references.
package pickle

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"netobjects/internal/wire"
)

// Marshaling errors.
var (
	// ErrUnsupported reports a type the pickler cannot encode.
	ErrUnsupported = errors.New("pickle: unsupported type")
	// ErrUnregistered reports an interface value whose dynamic type has not
	// been registered.
	ErrUnregistered = errors.New("pickle: unregistered type")
	// ErrTooDeep reports a value graph nested beyond MaxDepth, which in
	// practice means a cycle not broken by a pointer or map.
	ErrTooDeep = errors.New("pickle: value too deeply nested")
	// ErrCorrupt reports undecodable pickle bytes.
	ErrCorrupt = errors.New("pickle: corrupt data")
	// ErrNoRefs reports a network reference in the data when the pickler
	// has no NetRefs hook to resolve it.
	ErrNoRefs = errors.New("pickle: network reference with no NetRefs hook")
)

// MaxDepth bounds recursion while encoding and decoding. Cycles through
// pointers and maps are detected by sharing and never hit the limit; the
// limit exists to turn pathological graphs (such as a slice containing
// itself) into errors instead of stack exhaustion.
const MaxDepth = 10_000

// NetRefs is the runtime hook through which the pickler marshals network
// object references. Implementations report which static types they handle
// and convert between in-memory reference values and wireReps.
type NetRefs interface {
	// Handles reports whether values of type t are network references that
	// must be pickled as wireReps.
	Handles(t reflect.Type) bool
	// ToWire returns the wireRep for the reference value v, whose type was
	// accepted by Handles. The session value is the one the caller passed
	// to MarshalSession (nil otherwise); the runtime uses it to keep
	// references transiently dirty for the duration of one call.
	ToWire(session any, v reflect.Value) (wire.WireRep, error)
	// FromWire reconstructs a reference value assignable to type t from a
	// received wireRep. It is where surrogates are created, so it may block
	// while the reference is registered with its owner (the dirty call).
	// The session value is the one passed to UnmarshalSession.
	FromWire(session any, w wire.WireRep, t reflect.Type) (reflect.Value, error)
}

// A Pickler marshals and unmarshals value tuples. The zero value is not
// usable; construct with New. Picklers are safe for concurrent use.
type Pickler struct {
	reg   *Registry
	refs  NetRefs
	cache sync.Map // reflect.Type -> *typeCodec

	buildMu  sync.Mutex
	building map[reflect.Type]*typeCodec
}

// New returns a Pickler using the given type registry (nil means the
// package-level default registry) and network reference hook (nil disables
// network references).
func New(reg *Registry, refs NetRefs) *Pickler {
	if reg == nil {
		reg = DefaultRegistry
	}
	return &Pickler{reg: reg, refs: refs}
}

// Registry returns the type registry the pickler resolves dynamic type
// names against.
func (p *Pickler) Registry() *Registry { return p.reg }

// Marshal appends the pickled form of vals to buf (which may be nil) and
// returns the extended buffer. Each val is encoded as an interface value,
// so heterogeneous tuples — such as the argument list of a dynamic call —
// can be decoded by a peer that knows only the count.
func (p *Pickler) Marshal(buf []byte, vals ...any) ([]byte, error) {
	rvs := make([]reflect.Value, len(vals))
	for i, v := range vals {
		rvs[i] = reflect.ValueOf(&v).Elem() // interface-typed value
	}
	return p.MarshalValues(buf, rvs)
}

// MarshalValues appends the pickled form of the given values to buf.
// Values are encoded according to their static types.
func (p *Pickler) MarshalValues(buf []byte, vals []reflect.Value) ([]byte, error) {
	return p.MarshalSession(buf, vals, nil)
}

// emptyTuple is the pickled form of zero values: a single zero-count
// varint byte. Null calls (no arguments, no results) hit this constant
// on both sides without touching the codec machinery.
var emptyTuple = []byte{0}

// encScratch bundles the per-pickle encoding state with its encoder so
// one pool hit covers both; the sharing table is cleared, not
// reallocated, between pickles.
type encScratch struct {
	st  encState
	enc wire.Encoder
}

var encScratchPool = sync.Pool{New: func() any {
	sc := new(encScratch)
	sc.st.ptrID = make(map[ptrKey]uint64)
	return sc
}}

// MarshalSession is MarshalValues with a session value made visible to the
// NetRefs hook for every reference pickled.
func (p *Pickler) MarshalSession(buf []byte, vals []reflect.Value, session any) ([]byte, error) {
	if len(vals) == 0 {
		// The empty tuple is a constant; no encoder state needed.
		return append(buf[:0], emptyTuple...), nil
	}
	sc := encScratchPool.Get().(*encScratch)
	sc.enc.Reset(buf)
	st := &sc.st
	st.p, st.e, st.session = p, &sc.enc, session
	st.nextID, st.depth = 0, 0
	clear(st.ptrID)
	sc.enc.Uint(uint64(len(vals)))
	var err error
	for _, v := range vals {
		c, cerr := p.codecFor(v.Type())
		if cerr != nil {
			err = cerr
			break
		}
		if err = c.enc(st, v); err != nil {
			break
		}
	}
	out := sc.enc.Bytes()
	// Detach everything the caller or the next pickle must not share.
	st.p, st.e, st.session = nil, nil, nil
	sc.enc.Reset(nil)
	encScratchPool.Put(sc)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Unmarshal decodes a pickle produced by Marshal into the pointed-to
// destinations. The number of outs must equal the number of pickled values.
// Each destination must be a non-nil pointer; a pickled value is assigned
// to the pointee, with numeric conversion applied when the pickled dynamic
// type differs from the destination type but converts losslessly.
func (p *Pickler) Unmarshal(data []byte, outs ...any) error {
	ptrs := make([]reflect.Value, len(outs))
	types := make([]reflect.Type, len(outs))
	for i, o := range outs {
		rv := reflect.ValueOf(o)
		if rv.Kind() != reflect.Pointer || rv.IsNil() {
			return fmt.Errorf("pickle: Unmarshal destination %d is not a non-nil pointer", i)
		}
		ptrs[i] = rv
		// Marshal encodes every slot as an interface value, so decode each
		// slot at interface type — unless the destination itself is an
		// interface, in which case decoding directly applies any
		// network-reference wrapping registered for that interface type.
		if rv.Type().Elem().Kind() == reflect.Interface {
			types[i] = rv.Type().Elem()
		} else {
			types[i] = anyType
		}
	}
	vals, err := p.UnmarshalValues(data, types)
	if err != nil {
		return err
	}
	for i, v := range vals {
		dst := ptrs[i].Elem()
		if types[i] == anyType {
			// Unwrap the decoded dynamic value and assign with lossless
			// conversion, so Marshal(int(5)) round-trips into an int32
			// destination and similar.
			if v.IsNil() {
				dst.SetZero()
				continue
			}
			if err := convertAssign(dst, v.Elem()); err != nil {
				return err
			}
			continue
		}
		dst.Set(v)
	}
	return nil
}

var anyType = reflect.TypeOf((*any)(nil)).Elem()

// UnmarshalValues decodes a pickle into freshly allocated values of the
// given types. It is the decoding dual of MarshalValues: types must match
// the static types used when encoding, except that any destination type may
// be decoded from an interface encoding when assignment or lossless
// conversion is possible.
func (p *Pickler) UnmarshalValues(data []byte, types []reflect.Type) ([]reflect.Value, error) {
	return p.UnmarshalSession(data, types, nil)
}

// decScratch bundles the per-pickle decoding state with its decoder so
// one pool hit covers both.
type decScratch struct {
	st  decState
	dec wire.Decoder
}

var decScratchPool = sync.Pool{New: func() any { return new(decScratch) }}

// release zeroes the retained references and returns the scratch to the
// pool.
func (sc *decScratch) release() {
	st := &sc.st
	for i := range st.shared {
		st.shared[i] = reflect.Value{}
	}
	st.shared = st.shared[:0]
	st.p, st.d, st.session = nil, nil, nil
	st.depth = 0
	sc.dec.Reset(nil)
	decScratchPool.Put(sc)
}

// UnmarshalSession is UnmarshalValues with a session value made visible to
// the NetRefs hook for every reference unpickled.
func (p *Pickler) UnmarshalSession(data []byte, types []reflect.Type, session any) ([]reflect.Value, error) {
	if len(types) == 0 {
		// Null-tuple fast path: validate the count without codec state.
		d := wire.NewDecoder(data)
		n := d.Uint()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if n != 0 {
			return nil, fmt.Errorf("%w: pickle holds %d values, want 0", ErrCorrupt, n)
		}
		if d.Len() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Len())
		}
		return nil, nil
	}
	sc := decScratchPool.Get().(*decScratch)
	defer sc.release()
	sc.dec.Reset(data)
	d := &sc.dec
	st := &sc.st
	st.p, st.d, st.session = p, d, session
	n := d.Uint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != uint64(len(types)) {
		return nil, fmt.Errorf("%w: pickle holds %d values, want %d", ErrCorrupt, n, len(types))
	}
	out := make([]reflect.Value, len(types))
	for i, t := range types {
		c, err := p.codecFor(t)
		if err != nil {
			return nil, err
		}
		v := reflect.New(t).Elem()
		if err := c.dec(st, v); err != nil {
			return nil, err
		}
		out[i] = v
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Len())
	}
	return out, nil
}

// MarshalAnySession pickles each value as an interface value, with a
// session visible to the NetRefs hook. It is the encoding of dynamic call
// tuples: the receiver needs no static type information to decode.
func (p *Pickler) MarshalAnySession(buf []byte, vals []any, session any) ([]byte, error) {
	rvs := make([]reflect.Value, len(vals))
	for i := range vals {
		rvs[i] = reflect.ValueOf(&vals[i]).Elem()
	}
	return p.MarshalSession(buf, rvs, session)
}

// UnmarshalAnySession decodes a pickle whose slots were all encoded as
// interface values (Marshal or MarshalAnySession), returning the dynamic
// values. Network references decode to whatever the NetRefs hook produces
// for the empty interface.
func (p *Pickler) UnmarshalAnySession(data []byte, session any) ([]any, error) {
	if len(data) == 1 && data[0] == 0 {
		// The empty tuple; nothing to decode.
		return nil, nil
	}
	sc := decScratchPool.Get().(*decScratch)
	defer sc.release()
	sc.dec.Reset(data)
	d := &sc.dec
	st := &sc.st
	st.p, st.d, st.session = p, d, session
	n := d.Uint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > uint64(len(data))+1 {
		return nil, fmt.Errorf("%w: pickle claims %d values in %d bytes", ErrCorrupt, n, len(data))
	}
	c, err := p.codecFor(anyType)
	if err != nil {
		return nil, err
	}
	out := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		v := reflect.New(anyType).Elem()
		if err := c.dec(st, v); err != nil {
			return nil, err
		}
		out = append(out, v.Interface())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Len())
	}
	return out, nil
}

// encState carries per-pickle encoding state: the output encoder and the
// sharing table mapping already-seen pointer identities to reference ids.
type encState struct {
	p       *Pickler
	e       *wire.Encoder
	ptrID   map[ptrKey]uint64
	nextID  uint64
	depth   int
	session any
}

// decState carries per-pickle decoding state: the input decoder and the
// table of shared values indexed by reference id, in definition order.
type decState struct {
	p       *Pickler
	d       *wire.Decoder
	shared  []reflect.Value
	depth   int
	session any
}

// typeCodec holds the compiled encode and decode functions for one type.
type typeCodec struct {
	enc encFunc
	dec decFunc
}

type encFunc func(st *encState, v reflect.Value) error

// decFunc decodes into v, which is always addressable and settable.
type decFunc func(st *decState, v reflect.Value) error

// codecFor returns the compiled codec for t, building and caching it on
// first use. Building is serialized by buildMu; recursive types terminate
// because an in-progress type is visible in the building map and resolves
// to a placeholder that is filled in before the codec is published.
func (p *Pickler) codecFor(t reflect.Type) (*typeCodec, error) {
	if c, ok := p.cache.Load(t); ok {
		return c.(*typeCodec), nil
	}
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	return p.codecForLocked(t)
}

func (p *Pickler) codecForLocked(t reflect.Type) (*typeCodec, error) {
	if c, ok := p.cache.Load(t); ok {
		return c.(*typeCodec), nil
	}
	if c, ok := p.building[t]; ok {
		return c, nil
	}
	if p.building == nil {
		p.building = make(map[reflect.Type]*typeCodec)
	}
	c := new(typeCodec)
	p.building[t] = c
	defer delete(p.building, t)
	built, err := p.buildCodec(t)
	if err != nil {
		return nil, err
	}
	*c = *built
	p.cache.Store(t, c)
	return c, nil
}
