package flow

import "sync"

// RecvLedger is the receiver side of one flow-control window: it decides
// when to grant credit back to the sender. The sender's spendable credit
// is W minus whatever the ledger has not re-granted, so the ledger's one
// job is to track a signed debt — bytes consumed locally that the sender
// has not yet been credited for — and release it in coalesced grants.
//
// Consumption has deliberately eager semantics: a chunk counts as
// consumed the moment it lands in the partial assembly (Chunk), is
// un-consumed when the assembly completes into a message that now sits
// undelivered in the stream's inbox (Complete), and is re-consumed when
// the application finally receives it (Delivered). Granting during
// assembly is what keeps a message larger than the window streamable at
// all; freezing the window while completed messages sit undelivered is
// what backpressures a slow consumer. For the session-level ledger, which
// has no inbox, only Chunk is used: credit regenerates as fast as chunks
// are assimilated, so the session window bounds the wire burst, not
// consumer speed.
//
// Deadlock-freedom: grants are withheld only while debt < threshold. With
// threshold ≤ W/4, a sender starved to zero credit implies at least
// 3W/4 bytes are either in flight, in an undelivered message, or in
// unflushed debt; once the wire drains and the consumer catches up the
// debt alone must reach W > threshold and flush.
type RecvLedger struct {
	mu        sync.Mutex
	debt      int64 // consumed-but-ungranted bytes; may go negative after Complete
	threshold int64 // grants are withheld below this, to coalesce updates
}

// NewRecvLedger returns a ledger for a window of w bytes, coalescing
// grants to roughly quarter-window updates.
func NewRecvLedger(w int64) *RecvLedger {
	t := w / 4
	if t < 1 {
		t = 1
	}
	return &RecvLedger{threshold: t}
}

// flush returns the grant to issue now, zero if still coalescing.
// Callers hold mu.
func (l *RecvLedger) flush() int64 {
	if l.debt < l.threshold {
		return 0
	}
	g := l.debt
	l.debt = 0
	return g
}

// Chunk records n received bytes entering the partial assembly and
// returns the credit to grant the sender now (0 to keep coalescing).
func (l *RecvLedger) Chunk(n int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.debt += int64(n)
	return l.flush()
}

// Complete records that an assembled message of size n moved to the inbox
// undelivered: its bytes stop counting as consumed until Delivered, which
// freezes further grants while the consumer lags.
func (l *RecvLedger) Complete(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.debt -= int64(n)
}

// Delivered records that the application consumed a message of size n and
// returns the credit to grant the sender now (0 to keep coalescing).
func (l *RecvLedger) Delivered(n int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.debt += int64(n)
	return l.flush()
}
