// Package flow implements credit-based flow control, chunking and
// keepalives for multiplexed peer sessions, in the HTTP/2 style.
//
// The mux layer gave every exchange on a link one shared writer; this
// package makes that writer safe at production payload sizes. Network
// Objects marshals buffered streams by handing the underlying connection
// to the data precisely because bulk payloads and small control messages
// must not contend for one pipe — here the contention is resolved by
// scheduling instead: payloads larger than the chunk size are split into
// bounded OpData chunks interleaved round-robin across streams, control
// frames (cancels, collector RPCs, window updates) travel in a strict
// priority lane ahead of queued data, and per-stream plus session-level
// byte windows let a receiver backpressure exactly one slow stream
// without stalling the link. Session keepalives (OpFlowPing/Pong) detect
// dead peers between calls and retire the per-call connection probe.
//
// The package is deliberately transport-free: Scheduler, RecvLedger and
// Keepalive are pure state machines driven by the session's writer,
// reader and timer goroutines in internal/transport.
package flow

import "time"

// Defaults. The chunk size bounds how long a control frame can wait
// behind an in-progress data write; the windows bound per-stream and
// per-link buffering. The stream window must comfortably exceed the
// chunk size or a single chunk could never be granted.
const (
	// DefaultChunkSize is the largest data chunk a session sends: 64KB,
	// small enough that a cancel jumps the line within one write.
	DefaultChunkSize = 64 << 10
	// DefaultStreamWindow bounds un-consumed bytes in flight on one
	// stream.
	DefaultStreamWindow = 256 << 10
	// DefaultSessionWindow bounds un-consumed data bytes in flight across
	// the whole link.
	DefaultSessionWindow = 1 << 20
	// DefaultKeepaliveInterval paces session keepalive pings; a peer
	// silent for two intervals is declared dead.
	DefaultKeepaliveInterval = 10 * time.Second
	// KeepaliveMisses is how many silent intervals declare a peer dead.
	KeepaliveMisses = 2
)

// Params configures one session's flow control. The zero value of any
// field selects its default; use Withdefaults to resolve them.
type Params struct {
	// ChunkSize is the largest data chunk this session is willing to
	// receive (advertised in its hello) and the default for sends until
	// the peer's hello arrives.
	ChunkSize int
	// StreamWindow is the per-stream receive window advertised to the
	// peer.
	StreamWindow int64
	// SessionWindow is the session-level receive window advertised to
	// the peer.
	SessionWindow int64
	// KeepaliveInterval paces keepalive pings; 0 selects the default and
	// a negative value disables keepalives for the session.
	KeepaliveInterval time.Duration
}

// WithDefaults returns p with zero fields resolved to the package
// defaults.
func (p Params) WithDefaults() Params {
	if p.ChunkSize <= 0 {
		p.ChunkSize = DefaultChunkSize
	}
	if p.StreamWindow <= 0 {
		p.StreamWindow = DefaultStreamWindow
	}
	if p.SessionWindow <= 0 {
		p.SessionWindow = DefaultSessionWindow
	}
	if p.KeepaliveInterval == 0 {
		p.KeepaliveInterval = DefaultKeepaliveInterval
	}
	return p
}
