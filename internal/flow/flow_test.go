package flow

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestRecvLedgerGrantsCoalesce(t *testing.T) {
	l := NewRecvLedger(100) // threshold 25
	if g := l.Chunk(10); g != 0 {
		t.Fatalf("grant below threshold: %d", g)
	}
	if g := l.Chunk(20); g != 30 {
		t.Fatalf("coalesced grant = %d, want 30", g)
	}
	if g := l.Chunk(5); g != 0 {
		t.Fatalf("grant after flush: %d", g)
	}
}

// TestRecvLedgerFreezesUndelivered: bytes in a completed-but-undelivered
// message stop generating grants until the consumer takes the message.
func TestRecvLedgerFreezesUndelivered(t *testing.T) {
	l := NewRecvLedger(100)
	granted := l.Chunk(100) // whole message assembled, grants flow
	l.Complete(100)         // message parked in the inbox
	// More chunks of a second message arrive: debt climbs back from -100,
	// so no grants until it clears.
	granted += l.Chunk(60)
	if granted != 100 {
		t.Fatalf("granted %d while first message undelivered, want 100", granted)
	}
	if g := l.Delivered(100); g != 60 {
		t.Fatalf("grant after delivery = %d, want 60 (the frozen chunk bytes)", g)
	}
}

func TestSchedulerChunksAndRoundRobin(t *testing.T) {
	s := NewScheduler(4, 1<<20, 1<<20)
	a := s.Enqueue(1, []byte("aaaaaaaa")) // 2 chunks
	b := s.Enqueue(2, []byte("bbbbbbbb")) // 2 chunks
	var order []byte
	for {
		it, chunk, last, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, chunk[0])
		if last {
			s.Finish(it, nil)
		}
	}
	if !bytes.Equal(order, []byte("abab")) {
		t.Fatalf("interleave order = %q, want abab", order)
	}
	for _, it := range []*Item{a, b} {
		select {
		case err := <-it.Done():
			if err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatal("item not signalled after final chunk")
		}
	}
	if s.QueuedBytes() != 0 {
		t.Fatalf("queued bytes = %d after drain", s.QueuedBytes())
	}
}

func TestSchedulerCreditGating(t *testing.T) {
	s := NewScheduler(4, 6, 1<<20) // stream window 6: 1.5 chunks
	s.Enqueue(1, bytes.Repeat([]byte("x"), 12))
	var sent int
	for {
		_, chunk, _, ok := s.Next()
		if !ok {
			break
		}
		sent += len(chunk)
	}
	if sent != 6 {
		t.Fatalf("sent %d bytes with 6 credit", sent)
	}
	if s.Stalls() == 0 {
		t.Fatal("credit-blocked writer not counted as a stall")
	}
	s.Grant(1, 100)
	it, chunk, last, ok := s.Next()
	if !ok || len(chunk) != 4 {
		t.Fatalf("after grant: ok=%v len=%d", ok, len(chunk))
	}
	_, _, _ = it, last, ok
	// Session-level window gates across streams.
	s2 := NewScheduler(4, 1<<20, 5)
	s2.Enqueue(1, []byte("aaaa"))
	s2.Enqueue(2, []byte("bbbb"))
	sent = 0
	for {
		_, chunk, _, ok := s2.Next()
		if !ok {
			break
		}
		sent += len(chunk)
	}
	if sent != 5 {
		t.Fatalf("sent %d bytes with session window 5", sent)
	}
	s2.GrantSession(100)
	if _, _, _, ok := s2.Next(); !ok {
		t.Fatal("session grant did not unblock")
	}
}

func TestSchedulerAbortAndReset(t *testing.T) {
	s := NewScheduler(4, 1<<20, 1<<20)
	boom := errors.New("deadline")
	// Untouched item: no reset needed.
	it := s.Enqueue(1, []byte("aaaaaaaa"))
	if s.Abort(it, boom) {
		t.Fatal("unsent item should not need a reset")
	}
	if err := <-it.Done(); !errors.Is(err, boom) {
		t.Fatalf("aborted item err = %v", err)
	}
	// Partially sent item: reset required.
	it2 := s.Enqueue(2, []byte("bbbbbbbb"))
	if _, _, _, ok := s.Next(); !ok {
		t.Fatal("no chunk")
	}
	if !s.Abort(it2, boom) {
		t.Fatal("partially-sent abort must demand a reset")
	}
	// Item whose final chunk is with the writer: abort is a no-op.
	it3 := s.Enqueue(3, []byte("cc"))
	got, _, last, _ := s.Next()
	if got != it3 || !last {
		t.Fatal("expected it3's single final chunk")
	}
	if s.Abort(it3, boom) {
		t.Fatal("inflight final chunk must not reset")
	}
	s.Finish(it3, nil)
	if err := <-it3.Done(); err != nil {
		t.Fatalf("finished item err = %v", err)
	}
}

func TestSchedulerCloseStreamAndFail(t *testing.T) {
	s := NewScheduler(4, 1<<20, 1<<20)
	closed := errors.New("closed")
	a := s.Enqueue(1, []byte("aaaaaaaa"))
	s.Next() // partial
	if !s.CloseStream(1, closed) {
		t.Fatal("close with partial item must demand reset")
	}
	if err := <-a.Done(); !errors.Is(err, closed) {
		t.Fatalf("err = %v", err)
	}
	// New items on the same id after close start a fresh queue.
	b := s.Enqueue(1, []byte("zz"))
	it, _, last, ok := s.Next()
	if !ok || it != b || !last {
		t.Fatal("re-enqueued stream did not send")
	}
	dead := errors.New("session dead")
	c := s.Enqueue(5, []byte("cccc"))
	s.Fail(dead)
	if err := <-c.Done(); !errors.Is(err, dead) {
		t.Fatalf("err = %v", err)
	}
	if err := <-s.Enqueue(6, []byte("dd")).Done(); !errors.Is(err, dead) {
		t.Fatalf("post-fail enqueue err = %v", err)
	}
}

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	base := time.Unix(1000, 0)
	k := NewKeepalive(time.Second, base)
	// Quiet link: first tick pings, second declares dead.
	dead, ping, _ := k.Tick(base.Add(time.Second))
	if dead || !ping {
		t.Fatalf("tick 1: dead=%v ping=%v, want ping", dead, ping)
	}
	dead, _, _ = k.Tick(base.Add(2 * time.Second))
	if !dead {
		t.Fatal("peer silent for 2 intervals not declared dead")
	}
	// Traffic resets the clock and suppresses the probe.
	k2 := NewKeepalive(time.Second, base)
	k2.Touch(base.Add(900 * time.Millisecond))
	dead, ping, _ = k2.Tick(base.Add(time.Second))
	if dead || ping {
		t.Fatalf("fresh traffic: dead=%v ping=%v, want neither", dead, ping)
	}
	dead, ping, tok := k2.Tick(base.Add(2 * time.Second))
	if dead || !ping || tok == 0 {
		t.Fatalf("quiet again: dead=%v ping=%v tok=%d", dead, ping, tok)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.ChunkSize != DefaultChunkSize || p.StreamWindow != DefaultStreamWindow ||
		p.SessionWindow != DefaultSessionWindow || p.KeepaliveInterval != DefaultKeepaliveInterval {
		t.Fatalf("defaults not applied: %+v", p)
	}
	q := Params{KeepaliveInterval: -1, ChunkSize: 8}.WithDefaults()
	if q.KeepaliveInterval != -1 || q.ChunkSize != 8 {
		t.Fatalf("explicit values clobbered: %+v", q)
	}
}
