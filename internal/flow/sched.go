package flow

import "sync"

// Item is one queued payload: the unit a sender's Stream.Send waits on.
// The payload is not copied — it must stay untouched until Done fires.
type Item struct {
	payload []byte
	off     int
	id      uint64
	done    chan error
	sig     bool // done already signalled (guarded by Scheduler.mu)
}

// Done delivers exactly one value: nil once every chunk has been
// physically written, or the error that failed the item.
func (it *Item) Done() <-chan error { return it.done }

// ID returns the stream id the item was enqueued for.
func (it *Item) ID() uint64 { return it.id }

// Sent reports whether any chunk of the item has been handed to the
// writer — a partially-sent item cannot be silently withdrawn; the
// receiver's assembly must be reset.
func (it *Item) sent() bool { return it.off > 0 }

// sendQ is one stream's sender-side state: its spendable credit and
// queued items, in order.
type sendQ struct {
	id     uint64
	avail  int64
	items  []*Item
	ringed bool // currently present in the round-robin ring
}

// Scheduler is the sender half of a flow-enabled session: it queues
// large payloads per stream and deals them out as credit-gated, bounded
// chunks, round-robin across streams so no payload monopolizes the
// writer. The session's writer goroutine is the only consumer (Next /
// Finish); any goroutine may enqueue, grant or abort.
type Scheduler struct {
	mu           sync.Mutex
	chunk        int
	streamWindow int64 // initial credit for a newly seen stream
	sessAvail    int64
	streams      map[uint64]*sendQ
	ring         []uint64 // round-robin order over streams with state
	pos          int
	inflight     *Item // final chunk handed to the writer, not yet acked
	err          error
	kick         chan struct{}
	queuedBytes  int64
	stalls       uint64
}

// NewScheduler returns a scheduler chunking at chunk bytes with the
// peer-advertised per-stream and session windows as initial credit.
func NewScheduler(chunk int, streamWindow, sessionWindow int64) *Scheduler {
	return &Scheduler{
		chunk:        chunk,
		streamWindow: streamWindow,
		sessAvail:    sessionWindow,
		streams:      make(map[uint64]*sendQ),
		kick:         make(chan struct{}, 1),
	}
}

// Configure adopts the peer-advertised chunk size and windows once its
// hello arrives. Sends are gated on that hello, so no Enqueue can precede
// this call; existing credit state is simply replaced.
func (s *Scheduler) Configure(chunk int, streamWindow, sessionWindow int64) {
	s.mu.Lock()
	s.chunk = chunk
	s.streamWindow = streamWindow
	s.sessAvail = sessionWindow
	s.mu.Unlock()
	s.wake()
}

// Kick returns the channel the writer blocks on when it has nothing to
// send; it fires whenever new data or credit arrives.
func (s *Scheduler) Kick() <-chan struct{} { return s.kick }

func (s *Scheduler) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// signal delivers an item's outcome exactly once. Callers hold mu.
func (s *Scheduler) signal(it *Item, err error) {
	if it.sig {
		return
	}
	it.sig = true
	it.done <- err
}

// Enqueue queues payload for stream id and returns the Item to wait on.
// If the scheduler has already failed, the item is born failed.
func (s *Scheduler) Enqueue(id uint64, payload []byte) *Item {
	it := &Item{payload: payload, id: id, done: make(chan error, 1)}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.signal(it, err)
		s.mu.Unlock()
		return it
	}
	q := s.streams[id]
	if q == nil {
		q = &sendQ{id: id, avail: s.streamWindow}
		s.streams[id] = q
	}
	if !q.ringed {
		q.ringed = true
		s.ring = append(s.ring, id)
	}
	q.items = append(q.items, it)
	s.queuedBytes += int64(len(payload))
	s.mu.Unlock()
	s.wake()
	return it
}

// Next hands the writer the next sendable chunk under the credit limits,
// advancing the round-robin cursor for fairness. last marks the final
// chunk of its item; the writer must call Finish(item, err) after the
// physical write of a last chunk. ok is false when nothing is sendable —
// if data was queued but credit-blocked, that is a writer stall and is
// counted.
func (s *Scheduler) Next() (it *Item, chunk []byte, last bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || len(s.ring) == 0 {
		return nil, nil, false, false
	}
	for scanned := 0; scanned < len(s.ring); {
		if s.pos >= len(s.ring) {
			s.pos = 0
		}
		q := s.streams[s.ring[s.pos]]
		if q == nil || len(q.items) == 0 {
			// Lazily drop empty/closed streams from the ring.
			if q != nil {
				q.ringed = false
			}
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			if len(s.ring) == 0 {
				return nil, nil, false, false
			}
			continue
		}
		scanned++
		n := int64(s.chunk)
		head := q.items[0]
		if rem := int64(len(head.payload) - head.off); rem < n {
			n = rem
		}
		if q.avail < n {
			n = q.avail
		}
		if s.sessAvail < n {
			n = s.sessAvail
		}
		if n <= 0 {
			// This stream (or the session) is out of credit; try the next.
			s.pos++
			continue
		}
		chunk = head.payload[head.off : head.off+int(n)]
		head.off += int(n)
		q.avail -= n
		s.sessAvail -= n
		s.queuedBytes -= n
		last = head.off == len(head.payload)
		if last {
			q.items = q.items[1:]
			s.inflight = head
		}
		s.pos++ // fairness: next call starts at the following stream
		return head, chunk, last, true
	}
	// Data is queued but nothing is sendable: the writer is stalled on
	// credit.
	s.stalls++
	return nil, nil, false, false
}

// Finish acknowledges the physical write of an item's final chunk (err
// nil) or its failure.
func (s *Scheduler) Finish(it *Item, err error) {
	s.mu.Lock()
	if s.inflight == it {
		s.inflight = nil
	}
	s.signal(it, err)
	s.mu.Unlock()
}

// Grant adds stream credit. Grants for unknown (already closed) streams
// are dropped.
func (s *Scheduler) Grant(id uint64, n int64) {
	s.mu.Lock()
	if q := s.streams[id]; q != nil {
		q.avail += n
	}
	s.mu.Unlock()
	s.wake()
}

// GrantSession adds session-level credit.
func (s *Scheduler) GrantSession(n int64) {
	s.mu.Lock()
	s.sessAvail += n
	s.mu.Unlock()
	s.wake()
}

// Abort withdraws a queued item (deadline expiry, cancellation). It
// reports whether any chunk had already been written, in which case the
// caller must send a reset so the receiver drops its partial assembly.
// Aborting an item whose final chunk is already with the writer is a
// no-op: the message is effectively sent.
func (s *Scheduler) Abort(it *Item, err error) (needReset bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.sig || s.inflight == it {
		return false
	}
	if q := s.streams[it.id]; q != nil {
		for i, qi := range q.items {
			if qi == it {
				q.items = append(q.items[:i], q.items[i+1:]...)
				s.queuedBytes -= int64(len(it.payload) - it.off)
				break
			}
		}
	}
	s.signal(it, err)
	return it.sent()
}

// CloseStream drops a stream's state, failing its queued items with err.
// It reports whether a partially-sent item was abandoned (the caller
// must send a reset).
func (s *Scheduler) CloseStream(id uint64, err error) (needReset bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.streams[id]
	if q == nil {
		return false
	}
	delete(s.streams, id)
	for _, it := range q.items {
		if it.sent() {
			needReset = true
		}
		s.queuedBytes -= int64(len(it.payload) - it.off)
		s.signal(it, err)
	}
	return needReset
}

// Fail poisons the scheduler: every queued and future item fails with
// err. Called when the session dies.
func (s *Scheduler) Fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	if s.inflight != nil {
		s.signal(s.inflight, err)
		s.inflight = nil
	}
	for _, q := range s.streams {
		for _, it := range q.items {
			s.signal(it, err)
		}
	}
	s.streams = make(map[uint64]*sendQ)
	s.ring = nil
	s.queuedBytes = 0
	s.mu.Unlock()
	s.wake()
}

// QueuedBytes reports bytes queued and not yet handed to the writer.
func (s *Scheduler) QueuedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedBytes
}

// SessAvail reports the remaining session-level send credit.
func (s *Scheduler) SessAvail() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessAvail
}

// Stalls reports how many times the writer found data queued but nothing
// sendable for lack of credit.
func (s *Scheduler) Stalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}
