package flow

import (
	"sync/atomic"
	"time"
)

// Keepalive is the dead-peer detector for one session. The session's
// reader calls Touch on every inbound frame (any traffic proves the peer
// alive — pongs are not special); a timer goroutine calls Tick once per
// interval and pings whenever the link has been quiet. A peer silent for
// KeepaliveMisses consecutive intervals is declared dead, so detection is
// bounded by 2 intervals from the moment the peer stops responding.
//
// Time is passed in explicitly so the state machine is testable without
// real clocks.
type Keepalive struct {
	interval  time.Duration
	lastAlive atomic.Int64 // UnixNano of the most recent inbound frame
	token     atomic.Uint64
}

// NewKeepalive returns a detector pinging at interval, primed at now.
func NewKeepalive(interval time.Duration, now time.Time) *Keepalive {
	k := &Keepalive{interval: interval}
	k.lastAlive.Store(now.UnixNano())
	return k
}

// Interval returns the configured ping interval.
func (k *Keepalive) Interval() time.Duration { return k.interval }

// Touch records inbound traffic at now.
func (k *Keepalive) Touch(now time.Time) {
	k.lastAlive.Store(now.UnixNano())
}

// Probe allocates a fresh ping token outside the Tick schedule, for
// callers that want to nudge an immediate probe onto the wire — a lease
// renewal folding itself onto the keepalive exchange, for instance.
func (k *Keepalive) Probe() uint64 { return k.token.Add(1) }

// Tick advances the detector at now. dead reports that the peer has been
// silent for KeepaliveMisses intervals and the session must be failed;
// otherwise ping reports whether a probe should be sent (the link is
// quiet) and token is the probe's payload.
func (k *Keepalive) Tick(now time.Time) (dead bool, ping bool, token uint64) {
	quiet := now.UnixNano() - k.lastAlive.Load()
	if quiet >= int64(KeepaliveMisses*k.interval) {
		return true, false, 0
	}
	if quiet < int64(k.interval)/2 {
		// Recent traffic already proves liveness; skip the probe.
		return false, false, 0
	}
	return false, true, k.token.Add(1)
}
