package wire

import (
	"bytes"
	"testing"
)

func TestMuxRoundTrip(t *testing.T) {
	inner := Marshal(nil, &Call{Obj: 7, Method: "Frob", Args: []byte("xyz"), ID: 99})
	frame := AppendMuxHeader(nil, 99)
	frame = append(frame, inner...)

	if !IsMux(frame) {
		t.Fatal("IsMux = false for mux-wrapped frame")
	}
	if IsMux(inner) {
		t.Fatal("IsMux = true for plain frame")
	}
	id, payload, err := SplitMux(frame)
	if err != nil {
		t.Fatalf("SplitMux: %v", err)
	}
	if id != 99 {
		t.Fatalf("SplitMux id = %d, want 99", id)
	}
	if !bytes.Equal(payload, inner) {
		t.Fatal("SplitMux payload does not match inner message")
	}
	msg, err := Unmarshal(payload)
	if err != nil {
		t.Fatalf("Unmarshal inner: %v", err)
	}
	call, ok := msg.(*Call)
	if !ok || call.Method != "Frob" {
		t.Fatalf("inner message = %#v, want the original call", msg)
	}
}

func TestSplitMuxErrors(t *testing.T) {
	if _, _, err := SplitMux(Marshal(nil, &Ping{From: 1})); err == nil {
		t.Fatal("SplitMux accepted a plain frame")
	}
	if _, _, err := SplitMux(nil); err == nil {
		t.Fatal("SplitMux accepted an empty frame")
	}
	// Envelope header with a truncated id.
	if _, _, err := SplitMux([]byte{byte(OpMux)}); err == nil {
		t.Fatal("SplitMux accepted a truncated envelope")
	}
}

// TestPeekOpUnwrapsMux is what keeps chaos fault classification working
// over sessions: a policy keyed on the message kind must see the inner op
// through the envelope.
func TestPeekOpUnwrapsMux(t *testing.T) {
	msgs := []Message{
		&Call{Obj: 1, Method: "M"},
		&Result{Status: StatusOK},
		&Dirty{Obj: 2, Client: 3},
		&Clean{Obj: 2, Client: 3},
		&Ping{From: 4},
		&Lease{Client: 5},
		&CancelCall{ID: 6},
		&ResultAck{},
	}
	for _, m := range msgs {
		plain := Marshal(nil, m)
		if got := PeekOp(plain); got != m.Op() {
			t.Fatalf("PeekOp(plain %v) = %v", m.Op(), got)
		}
		wrapped := AppendMuxHeader(nil, 123456)
		wrapped = append(wrapped, plain...)
		if got := PeekOp(wrapped); got != m.Op() {
			t.Fatalf("PeekOp(muxed %v) = %v", m.Op(), got)
		}
	}
	// A nested envelope is a protocol error, not a classification.
	nested := AppendMuxHeader(nil, 1)
	nested = AppendMuxHeader(nested, 2)
	nested = append(nested, Marshal(nil, &Ping{From: 1})...)
	if got := PeekOp(nested); got != OpInvalid {
		t.Fatalf("PeekOp(nested mux) = %v, want invalid", got)
	}
	if got := PeekOp([]byte{byte(OpMux)}); got != OpInvalid {
		t.Fatalf("PeekOp(truncated mux) = %v, want invalid", got)
	}
}

// TestMarshalAllocs is the buffer-reuse regression gate: encoding a call
// into a caller-supplied buffer must not allocate in the steady state.
func TestMarshalAllocs(t *testing.T) {
	call := &Call{Obj: 9, Method: "Incr", Fingerprint: 0xfeed, Typed: true,
		Args: bytes.Repeat([]byte("a"), 64), ID: 42, DeadlineMillis: 1000}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		buf = Marshal(buf[:0], call)
	})
	if allocs != 0 {
		t.Fatalf("Marshal into reused buffer: %v allocs/op, want 0", allocs)
	}
}

// TestAppendFrameAllocs: frame assembly into a reused buffer is
// allocation-free, and WriteFrame's pooled path stays allocation-free
// writing to an in-memory sink.
func TestAppendFrameAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 128)
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = AppendFrame(dst[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame into reused buffer: %v allocs/op, want 0", allocs)
	}

	var sink countingWriter
	allocs = testing.AllocsPerRun(200, func() {
		if err := WriteFrame(&sink, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteFrame via pooled buffer: %v allocs/op, want 0", allocs)
	}
}

// countingWriter discards its input without allocating (bytes.Buffer
// would grow and pollute the allocation count).
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func TestGetPutBuf(t *testing.T) {
	bp := GetBuf()
	if len(*bp) != 0 {
		t.Fatalf("GetBuf returned non-empty buffer: len %d", len(*bp))
	}
	*bp = append(*bp, "hello"...)
	PutBuf(bp)
	// Oversized buffers must be dropped, not pooled.
	big := make([]byte, 0, maxPooledBuf+1)
	PutBuf(&big)
	PutBuf(nil) // must not panic
	bp2 := GetBuf()
	if len(*bp2) != 0 {
		t.Fatal("pooled buffer came back non-empty")
	}
	PutBuf(bp2)
}
