package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors. Decoding is defensive: all failures surface as errors
// wrapping ErrCorrupt rather than panics, because the bytes come off the
// network.
var (
	// ErrCorrupt reports undecodable input.
	ErrCorrupt = errors.New("wire: corrupt data")
	// ErrTooLarge reports a length field exceeding the configured limit.
	ErrTooLarge = errors.New("wire: length exceeds limit")
)

// MaxStringLen bounds any single length-prefixed string or byte field.
// It exists to stop a corrupt or hostile length prefix from driving a
// multi-gigabyte allocation.
const MaxStringLen = 64 << 20

// Encoder appends primitive values to a byte slice in the wire format:
// unsigned varints for integers, length-prefixed bytes for strings.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (which may be nil);
// passing a preallocated buffer lets callers reuse storage across messages.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Reset points the encoder at buf (which may be nil), discarding any
// previous contents, so pooled encoders can be reused across messages.
func (e *Encoder) Reset(buf []byte) { e.buf = buf[:0] }

// Bytes returns the encoded contents. The slice aliases the encoder's
// internal buffer and is valid until the next call on the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uint appends an unsigned varint.
func (e *Encoder) Uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a signed varint (zig-zag encoded by AppendVarint).
func (e *Encoder) Int(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Bool appends a boolean as a single varint 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint(1)
	} else {
		e.Uint(0)
	}
}

// Float appends a float64 as its IEEE-754 bits.
func (e *Encoder) Float(v float64) { e.Uint(math.Float64bits(v)) }

// Complex appends a complex128 as two float64s.
func (e *Encoder) Complex(v complex128) { e.Float(real(v)); e.Float(imag(v)) }

// BytesField appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) {
	e.Uint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Uint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// WireRep appends a wireRep.
func (e *Encoder) WireRep(w WireRep) {
	e.Uint(uint64(w.Owner))
	e.StringSlice(w.Endpoints)
	e.Uint(w.Index)
}

// Decoder consumes primitive values from a byte slice written by Encoder.
// Errors are sticky: after the first failure every subsequent read returns
// the same error, so call sites may decode a full message and check the
// error once at the end.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset points the decoder at buf and clears any sticky error, so
// pooled decoders can be reused across messages.
func (d *Decoder) Reset(buf []byte) { d.buf, d.err = buf, nil }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unconsumed bytes.
func (d *Decoder) Len() int { return len(d.buf) }

func (d *Decoder) fail(why string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, why)
	}
}

// Uint consumes an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Int consumes a signed varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Bool consumes a boolean.
func (d *Decoder) Bool() bool {
	switch d.Uint() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

// Float consumes a float64.
func (d *Decoder) Float() float64 { return math.Float64frombits(d.Uint()) }

// Complex consumes a complex128.
func (d *Decoder) Complex() complex128 {
	re := d.Float()
	im := d.Float()
	return complex(re, im)
}

// BytesField consumes a length-prefixed byte string. The result aliases the
// decoder's input buffer; callers that retain it beyond the buffer's
// lifetime must copy.
func (d *Decoder) BytesField() []byte {
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen {
		d.err = fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.fail("short bytes")
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// String consumes a length-prefixed string.
func (d *Decoder) String() string { return string(d.BytesField()) }

// StringSlice consumes a count-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.Uint()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen/2 {
		d.err = fmt.Errorf("%w: %d strings", ErrTooLarge, n)
		return nil
	}
	// Cap the initial allocation; a hostile count cannot force a large
	// allocation because each element consumes at least one input byte.
	ss := make([]string, 0, min(n, 64))
	for i := uint64(0); i < n; i++ {
		ss = append(ss, d.String())
		if d.err != nil {
			return nil
		}
	}
	return ss
}

// WireRep consumes a wireRep.
func (d *Decoder) WireRep() WireRep {
	var w WireRep
	w.Owner = SpaceID(d.Uint())
	w.Endpoints = d.StringSlice()
	w.Index = d.Uint()
	return w
}
