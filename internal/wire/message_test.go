package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(nil, m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Op(), err)
	}
	if got.Op() != m.Op() {
		t.Fatalf("op mismatch: sent %v got %v", m.Op(), got.Op())
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		&Call{Obj: 5, Method: "Deposit", Fingerprint: 0xdeadbeef, Args: []byte("args")},
		&Call{Obj: 5, Method: "Deposit", Typed: true, Args: []byte("t")},
		&Call{Obj: 5, Method: "Deposit", Args: []byte("a"), ID: 77, DeadlineMillis: 1500},
		&Call{},
		&CancelCall{ID: 77},
		&CancelCall{},
		&CancelAck{Status: StatusOK},
		&CancelAck{Status: StatusNoSuchObject},
		&Result{Status: StatusCancelled, Err: "call cancelled"},
		&Result{Status: StatusDeadlineExceeded, Err: "deadline exceeded at owner"},
		&Result{Status: StatusSpaceClosed, Err: "space draining"},
		&Result{Status: StatusOK, Results: []byte{1, 2, 3}},
		&Result{Status: StatusOK, Results: []byte{1}, NeedAck: true},
		&ResultAck{},
		&Result{Status: StatusAppError, Err: "insufficient funds", Results: []byte{9}},
		&Result{Status: StatusNoSuchObject, Err: "gone"},
		&Dirty{Obj: 9, Client: 77, ClientEndpoints: []string{"tcp:1.2.3.4:9", "inmem:x"}, Seq: 12, Owner: 501},
		&DirtyAck{Status: StatusOK},
		&DirtyAck{Status: StatusNoSuchObject, Err: "object withdrawn"},
		&Clean{Obj: 3, Client: 42, Seq: 13, Strong: true, Owner: 501},
		&Clean{Obj: 3, Client: 42, Seq: 14},
		&CleanAck{Status: StatusOK},
		&Ping{From: 1234},
		&PingAck{From: 4321},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%v: got %+v want %+v", m.Op(), got, m)
		}
	}
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// compares semantic content: the codec does not distinguish nil from empty.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *Call:
		c := *v
		if len(c.Args) == 0 {
			c.Args = nil
		}
		return &c
	case *Result:
		c := *v
		if len(c.Results) == 0 {
			c.Results = nil
		}
		return &c
	case *Dirty:
		c := *v
		if len(c.ClientEndpoints) == 0 {
			c.ClientEndpoints = nil
		}
		return &c
	default:
		return m
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty payload: want error")
	}
	e := NewEncoder(nil)
	e.Uint(200) // unknown op
	if _, err := Unmarshal(e.Bytes()); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("unknown op: got %v", err)
	}
	// Truncated call.
	b := Marshal(nil, &Call{Obj: 1, Method: "M", Args: []byte("aaaa")})
	if _, err := Unmarshal(b[:len(b)-2]); err == nil {
		t.Error("truncated call: want error")
	}
	// Trailing garbage.
	b = Marshal(nil, &Ping{From: 1})
	b = append(b, 0x00)
	if _, err := Unmarshal(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: got %v", err)
	}
}

func TestMarshalReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 128)
	b1 := Marshal(buf, &Ping{From: 9})
	if cap(b1) != cap(buf) {
		t.Fatalf("expected buffer reuse: cap %d vs %d", cap(b1), cap(buf))
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	ops := []Op{OpCall, OpResult, OpDirty, OpDirtyAck, OpClean, OpCleanAck, OpPing, OpPingAck,
		OpCancelCall, OpCancelAck, Op(99)}
	seen := map[string]bool{}
	for _, o := range ops {
		s := o.String()
		if s == "" || seen[s] {
			t.Errorf("op %d: bad or duplicate string %q", o, s)
		}
		seen[s] = true
	}
	sts := []Status{StatusOK, StatusAppError, StatusNoSuchObject, StatusNoSuchMethod,
		StatusBadFingerprint, StatusMarshal, StatusInternal,
		StatusCancelled, StatusDeadlineExceeded, StatusSpaceClosed, Status(99)}
	seen = map[string]bool{}
	for _, s := range sts {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("status %d: bad or duplicate string %q", s, str)
		}
		seen[str] = true
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	var scratch []byte
	for _, p := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: got %d bytes want %d", len(got), len(p))
		}
		scratch = got
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err == nil {
		t.Fatal("truncated frame: want error")
	}
}

func TestFrameTooLargeHeader(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestCleanBatchRoundTrip(t *testing.T) {
	m := &CleanBatch{
		Client:  42,
		Objs:    []uint64{1, 2, 3},
		Seqs:    []uint64{10, 20, 30},
		Strongs: []bool{false, true, false},
		Owner:   501,
	}
	got := roundTrip(t, m).(*CleanBatch)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
	empty := roundTrip(t, &CleanBatch{Client: 1}).(*CleanBatch)
	if len(empty.Objs) != 0 {
		t.Fatalf("got %+v", empty)
	}
	// A hostile count must be rejected.
	e := NewEncoder(nil)
	e.Uint(uint64(OpCleanBatch))
	e.Uint(1)       // client
	e.Uint(1 << 60) // count
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Fatal("hostile batch count accepted")
	}
}
