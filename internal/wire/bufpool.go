package wire

import "sync"

// maxPooledBuf bounds the capacity of buffers returned to the pool. A
// single huge frame (a large pickled argument) must not pin a megabyte of
// scratch behind every pool slot forever.
const maxPooledBuf = 1 << 20

// bufPool recycles scratch buffers for frame assembly and message
// encoding. GetBuf/PutBuf expose it so the transport session layer and
// the runtime share one pool for their per-frame buffers instead of
// allocating per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled scratch buffer with zero length and nonzero
// capacity. Return it with PutBuf when the bytes are no longer referenced.
func GetBuf() *[]byte {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutBuf returns a buffer obtained from GetBuf (or grown from one) to the
// pool. Oversized buffers are dropped rather than pooled. The caller must
// not touch *bp afterwards.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	bufPool.Put(bp)
}
