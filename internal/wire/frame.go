package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single protocol frame. Frames are length-prefixed, so
// the limit protects a receiver from a corrupt or hostile length word.
const MaxFrame = 256 << 20

// ErrFrameTooLarge reports a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame containing payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	// Issue a single Write so concurrent writers interleave at frame
	// granularity when the caller serializes at a higher level anyway, and
	// so TCP sees one buffer per small frame.
	buf := make([]byte, 0, 4+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it has
// sufficient capacity. It returns the payload, which may alias buf.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
