package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single protocol frame. Frames are length-prefixed, so
// the limit protects a receiver from a corrupt or hostile length word.
const MaxFrame = 256 << 20

// ErrFrameTooLarge reports a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// AppendFrame appends one length-prefixed frame containing payload to dst
// and returns the extended slice, so callers assembling frames into
// reusable buffers avoid the per-frame allocation of WriteFrame's
// internal path.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// WriteFrame writes one length-prefixed frame containing payload. The
// header and payload are assembled in a pooled scratch buffer and issued
// as a single Write, so concurrent writers interleave at frame
// granularity when the caller serializes at a higher level anyway, TCP
// sees one buffer per small frame, and the steady state allocates
// nothing.
func WriteFrame(w io.Writer, payload []byte) error {
	bp := GetBuf()
	buf, err := AppendFrame((*bp)[:0], payload)
	if err != nil {
		PutBuf(bp)
		return err
	}
	*bp = buf
	_, err = w.Write(buf)
	PutBuf(bp)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it has
// sufficient capacity. It returns the payload, which may alias buf.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
