package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Op identifies a protocol message kind.
type Op uint8

// The protocol message set. A remote method invocation is a Call/Result
// pair. The distributed collector uses Dirty/DirtyAck to register a client
// in an object's dirty set and Clean/CleanAck to remove it; Ping/PingAck
// let an owner probe clients that hold surrogates for its objects.
const (
	OpInvalid Op = iota
	OpCall
	OpResult
	OpDirty
	OpDirtyAck
	OpClean
	OpCleanAck
	OpPing
	OpPingAck
	// OpResultAck acknowledges receipt of a Result that carried network
	// references: the sender keeps those references transiently dirty until
	// the ack arrives, closing the window Birrell's presentation left open
	// for references returned as results.
	OpResultAck
	// OpCleanBatch carries several clean calls from one client in a single
	// message — the batching cost reduction of the paper. Answered with a
	// CleanAck.
	OpCleanBatch
	// OpLease renews a client's liveness lease at an owner — the
	// RMI-style alternative to owner-driven pinging.
	OpLease
	// OpLeaseAck acknowledges a lease renewal with the granted duration.
	OpLeaseAck
	// OpCancelCall forwards a caller's alert to the owner: the call
	// identified by its id should stop as soon as it can (the paper's
	// Thread.Alert propagated across the wire). Connections are lock-step,
	// so the cancel travels on its own connection, not the call's.
	OpCancelCall
	// OpCancelAck answers a CancelCall; StatusOK means the call was found
	// in flight and its context cancelled, StatusNoSuchObject that it had
	// already finished (or never arrived) — both are fine outcomes.
	OpCancelAck
	// OpMux wraps any other message in a multiplexing envelope: the op is
	// followed by a stream-id uvarint and then the ordinary marshaled
	// message. Sessions tag every frame on a shared connection with the id
	// so interleaved responses find their waiting callers. Envelopes do
	// not nest.
	OpMux
	// OpData carries one bounded chunk of a large muxed message:
	// [OpData][stream id][flags][chunk bytes]. Flow-enabled sessions split
	// any payload larger than the negotiated chunk size into OpData frames
	// so a bulk argument cannot monopolize the shared writer. Flags bit 0
	// (DataFlagLast) marks the final chunk of a message; bit 1
	// (DataFlagReset) aborts the stream's partial assembly (the sender
	// abandoned the message mid-stream).
	OpData
	// OpWindowUpdate grants flow-control credit:
	// [OpWindowUpdate][stream id][increment bytes]. Stream id 0 replenishes
	// the session-level window; any other id replenishes that stream's
	// window. Receivers issue grants as the dispatcher consumes, so a slow
	// callee backpressures exactly one stream rather than the link.
	OpWindowUpdate
	// OpFlowPing is the session keepalive probe: [OpFlowPing][token]. The
	// HTTP/2 PING analog — named FlowPing because OpPing is already the
	// collector's liveness probe. Answered with an OpFlowPong echoing the
	// token. Session keepalives retire the per-call connection health
	// probe on mux links and detect dead peers between calls.
	OpFlowPing
	// OpFlowPong answers an OpFlowPing: [OpFlowPong][token].
	OpFlowPong
	// OpSessHello advertises a session's flow-control capability and
	// receive windows. It travels wrapped in the mux envelope on reserved
	// stream id 0 — [OpMux][0][marshaled SessHello] — so legacy peers that
	// predate flow control discard it harmlessly (clients drop frames for
	// unknown stream ids; servers fail a single accept handler's decode).
	// Naked flow frames (OpData, OpWindowUpdate, OpFlowPing/Pong) are only
	// ever sent after the peer's hello has been received.
	OpSessHello
	// OpPipeHello advertises a session's promise-pipelining and batching
	// capability. Like SessHello it travels wrapped in the mux envelope on
	// reserved stream id 0 so legacy peers discard it harmlessly; it is a
	// separate message (not new SessHello fields) because the decoder
	// rejects trailing bytes — growing SessHello would make old peers drop
	// the whole hello and lose flow control against new ones.
	OpPipeHello
	// OpPipeCall requests invocation of a method whose receiver or
	// arguments may be unresolved promises from earlier pipelined calls on
	// the same session. The owner chains it against its per-session
	// completion table instead of making the client wait a round trip per
	// dependency. Answered with an OpPromiseResolve on the same stream.
	OpPipeCall
	// OpPromiseResolve carries the outcome of a pipelined call back to the
	// client, resolving the promise id the client assigned to it. Shaped
	// like a Result plus the promise id.
	OpPromiseResolve
	// OpOneWay requests invocation with no reply at all: no result frame,
	// no error report, no acknowledgement. One-way calls on a session are
	// executed in send order relative to each other, and a later pipelined
	// call can fence on them via PipeCall.Barrier.
	OpOneWay
	// OpBatch coalesces several complete frames into one transport frame:
	// [OpBatch]([uvarint length][frame bytes])*. The receiver processes
	// the sub-frames exactly as if they had arrived separately. Only sent
	// to peers that advertised CapBatch in their PipeHello, so it never
	// reaches a decoder that cannot split it.
	OpBatch
	// OpPeerHello advertises a session endpoint's space identity. Like
	// SessHello and PipeHello it travels wrapped in the mux envelope on
	// reserved stream id 0 so legacy peers discard it harmlessly; it is a
	// separate message (not new SessHello fields) because the decoder
	// rejects trailing bytes. The identity lets the collector's liveness
	// daemons treat a healthy session to a peer as proof that the peer is
	// alive, without mistaking an endpoint reused by a new incarnation for
	// the space that used to answer there.
	OpPeerHello
	// OpCycleQuery asks a client space for the back-references behind its
	// surrogates of the sender's objects — the cross-space cycle
	// detector's probe. Answered with an OpCycleAnswer.
	OpCycleQuery
	// OpCycleAnswer reports, per queried key, whether the surrogate is
	// rooted in the responding space's application and which of the
	// responder's own exported objects hold it.
	OpCycleAnswer
	// OpCycleCollect instructs an owner to reclaim the dirty entries of
	// exported objects that a completed trial-deletion pass proved to be
	// members of a dead cross-space cycle. Answered with a CleanAck.
	OpCycleCollect
)

// maxOp is the largest valid op, for PeekOp range checks.
const maxOp = OpCycleCollect

// String names the op for logs.
func (o Op) String() string {
	switch o {
	case OpCall:
		return "call"
	case OpResult:
		return "result"
	case OpDirty:
		return "dirty"
	case OpDirtyAck:
		return "dirty-ack"
	case OpClean:
		return "clean"
	case OpCleanAck:
		return "clean-ack"
	case OpPing:
		return "ping"
	case OpPingAck:
		return "ping-ack"
	case OpResultAck:
		return "result-ack"
	case OpCleanBatch:
		return "clean-batch"
	case OpLease:
		return "lease"
	case OpLeaseAck:
		return "lease-ack"
	case OpCancelCall:
		return "cancel-call"
	case OpCancelAck:
		return "cancel-ack"
	case OpMux:
		return "mux"
	case OpData:
		return "data"
	case OpWindowUpdate:
		return "window-update"
	case OpFlowPing:
		return "flow-ping"
	case OpFlowPong:
		return "flow-pong"
	case OpSessHello:
		return "sess-hello"
	case OpPipeHello:
		return "pipe-hello"
	case OpPipeCall:
		return "pipe-call"
	case OpPromiseResolve:
		return "promise-resolve"
	case OpOneWay:
		return "one-way"
	case OpBatch:
		return "batch"
	case OpPeerHello:
		return "peer-hello"
	case OpCycleQuery:
		return "cycle-query"
	case OpCycleAnswer:
		return "cycle-answer"
	case OpCycleCollect:
		return "cycle-collect"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status classifies the outcome reported in a Result, DirtyAck or CleanAck.
type Status uint8

// Result statuses. StatusAppError carries an error returned by the remote
// method itself (the call executed); every other non-OK status reports a
// runtime-level failure (the call may not have executed).
const (
	StatusOK Status = iota
	StatusAppError
	StatusNoSuchObject
	StatusNoSuchMethod
	StatusBadFingerprint
	StatusMarshal
	StatusInternal
	// StatusCancelled reports that the call's context was cancelled — the
	// caller's alert reached the owner before the method finished.
	StatusCancelled
	// StatusDeadlineExceeded reports that the call's deadline expired at
	// the owner before the method finished.
	StatusDeadlineExceeded
	// StatusSpaceClosed reports that the receiving space is draining or
	// closed and accepts no new calls.
	StatusSpaceClosed
	// StatusPromiseBroken reports that a pipelined call was never executed
	// because a call it depended on failed (the chain was poisoned) or the
	// session carrying the chain died before the dependency resolved.
	StatusPromiseBroken
)

// String names the status for logs and errors.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "application error"
	case StatusNoSuchObject:
		return "no such object"
	case StatusNoSuchMethod:
		return "no such method"
	case StatusBadFingerprint:
		return "stub fingerprint mismatch"
	case StatusMarshal:
		return "marshaling error"
	case StatusInternal:
		return "internal error"
	case StatusCancelled:
		return "call cancelled"
	case StatusDeadlineExceeded:
		return "deadline exceeded"
	case StatusSpaceClosed:
		return "space closed"
	case StatusPromiseBroken:
		return "promise broken"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	// Op returns the message kind.
	Op() Op
	encode(*Encoder)
	decode(*Decoder)
}

// Call requests invocation of a method on an exported object.
type Call struct {
	// Obj is the target's index in the receiving space's export table.
	Obj uint64
	// Method is the method name on the exported object.
	Method string
	// Fingerprint is the caller's stub fingerprint for the object's type;
	// zero means "unchecked" (reflection stubs).
	Fingerprint uint64
	// Typed reports how Args is encoded: true means the caller pickled the
	// arguments at the method's declared parameter types (generated stubs,
	// the fast path); false means each argument is pickled as an interface
	// value (dynamic calls). The dispatcher answers in the same encoding.
	Typed bool
	// Args is the pickled argument tuple.
	Args []byte
	// ID correlates this call with a later CancelCall and with trace
	// events; zero means the caller will never cancel.
	ID uint64
	// DeadlineMillis is the caller's remaining time budget when the call
	// was sent, in milliseconds; zero means no deadline was propagated.
	// The owner treats it as advisory and caps it with its own bound — a
	// relative budget rather than an absolute time, so the two spaces'
	// clocks need not agree.
	DeadlineMillis uint64
}

// Op returns OpCall.
func (*Call) Op() Op { return OpCall }

func (m *Call) encode(e *Encoder) {
	e.Uint(m.Obj)
	e.String(m.Method)
	e.Uint(m.Fingerprint)
	e.Bool(m.Typed)
	e.BytesField(m.Args)
	e.Uint(m.ID)
	e.Uint(m.DeadlineMillis)
}

func (m *Call) decode(d *Decoder) {
	m.Obj = d.Uint()
	// Interned: the same method names arrive on every call, and the
	// dispatch cache, per-method metrics and trace events all key on the
	// string — one canonical copy serves them all without a per-call
	// allocation.
	m.Method = d.InternedString()
	m.Fingerprint = d.Uint()
	m.Typed = d.Bool()
	m.Args = d.BytesField()
	m.ID = d.Uint()
	m.DeadlineMillis = d.Uint()
}

// Result carries the outcome of a Call.
type Result struct {
	// Status classifies the outcome.
	Status Status
	// Err is the error text when Status != StatusOK.
	Err string
	// Results is the pickled result tuple when Status == StatusOK or
	// StatusAppError (a method may return values alongside an error).
	Results []byte
	// NeedAck is set when Results carries network references; the caller
	// must send a ResultAck on the same connection after unmarshaling so
	// the sender can drop its transient dirty entries for them.
	NeedAck bool
}

// Op returns OpResult.
func (*Result) Op() Op { return OpResult }

func (m *Result) encode(e *Encoder) {
	e.Uint(uint64(m.Status))
	e.String(m.Err)
	e.BytesField(m.Results)
	e.Bool(m.NeedAck)
}

func (m *Result) decode(d *Decoder) {
	m.Status = Status(d.Uint())
	m.Err = d.String()
	m.Results = d.BytesField()
	m.NeedAck = d.Bool()
}

// Dirty registers the calling client in the dirty set of an exported
// object. It is sent by a space that has just received a wireRep for an
// object it holds no surrogate for, before the surrogate becomes usable.
type Dirty struct {
	// Obj is the object's index at the owner.
	Obj uint64
	// Client identifies the space acquiring the reference.
	Client SpaceID
	// ClientEndpoints are endpoints at which the owner can ping the client.
	ClientEndpoints []string
	// Seq orders this client's dirty and clean calls for the object;
	// the owner ignores operations whose Seq is not larger than the largest
	// already seen from this client.
	Seq uint64
	// Owner names the space this dirty call is addressed to. Space ids
	// are unique over time, so a receiver with a different id is a new
	// incarnation reusing the endpoint and must refuse the call rather
	// than register the client against an unrelated object that happens
	// to share the index. Zero means unaddressed (accepted anywhere).
	Owner SpaceID
}

// Op returns OpDirty.
func (*Dirty) Op() Op { return OpDirty }

func (m *Dirty) encode(e *Encoder) {
	e.Uint(m.Obj)
	e.Uint(uint64(m.Client))
	e.StringSlice(m.ClientEndpoints)
	e.Uint(m.Seq)
	e.Uint(uint64(m.Owner))
}

func (m *Dirty) decode(d *Decoder) {
	m.Obj = d.Uint()
	m.Client = SpaceID(d.Uint())
	m.ClientEndpoints = d.StringSlice()
	m.Seq = d.Uint()
	m.Owner = SpaceID(d.Uint())
}

// DirtyAck acknowledges a Dirty call.
type DirtyAck struct {
	// Status is StatusOK on success; StatusNoSuchObject if the object has
	// already been withdrawn from the owner's export table.
	Status Status
	// Err is the error text when Status != StatusOK.
	Err string
}

// Op returns OpDirtyAck.
func (*DirtyAck) Op() Op { return OpDirtyAck }

func (m *DirtyAck) encode(e *Encoder) {
	e.Uint(uint64(m.Status))
	e.String(m.Err)
}

func (m *DirtyAck) decode(d *Decoder) {
	m.Status = Status(d.Uint())
	m.Err = d.String()
}

// Clean removes the calling client from the dirty set of an exported
// object. A strong clean additionally invalidates any dirty call from this
// client still in flight (sent after a dirty call whose fate is unknown).
type Clean struct {
	// Obj is the object's index at the owner.
	Obj uint64
	// Client identifies the space dropping the reference.
	Client SpaceID
	// Seq orders this client's dirty and clean calls for the object.
	Seq uint64
	// Strong marks a clean issued after a dirty call failed with unknown
	// outcome; it must take effect even if the dirty call never arrived.
	Strong bool
	// Owner names the space this clean is addressed to. A receiver with
	// a different id is a later incarnation at a reused endpoint; it must
	// not apply the clean (the client's sequence counter for the dead
	// owner is unrelated to any counter at the new one, so a stale clean
	// could otherwise cancel a live registration). Zero means unaddressed.
	Owner SpaceID
}

// Op returns OpClean.
func (*Clean) Op() Op { return OpClean }

func (m *Clean) encode(e *Encoder) {
	e.Uint(m.Obj)
	e.Uint(uint64(m.Client))
	e.Uint(m.Seq)
	e.Bool(m.Strong)
	e.Uint(uint64(m.Owner))
}

func (m *Clean) decode(d *Decoder) {
	m.Obj = d.Uint()
	m.Client = SpaceID(d.Uint())
	m.Seq = d.Uint()
	m.Strong = d.Bool()
	m.Owner = SpaceID(d.Uint())
}

// CleanAck acknowledges a Clean call.
type CleanAck struct {
	// Status is StatusOK on success. A clean for an absent entry is a
	// no-op and still reports StatusOK, as the paper specifies.
	Status Status
	// Err is the error text when Status != StatusOK.
	Err string
}

// Op returns OpCleanAck.
func (*CleanAck) Op() Op { return OpCleanAck }

func (m *CleanAck) encode(e *Encoder) {
	e.Uint(uint64(m.Status))
	e.String(m.Err)
}

func (m *CleanAck) decode(d *Decoder) {
	m.Status = Status(d.Uint())
	m.Err = d.String()
}

// Ping probes a client space believed to hold surrogates for the sender's
// objects. A client that cannot be reached for long enough is presumed dead
// and removed from all dirty sets at the owner.
type Ping struct {
	// From identifies the pinging owner.
	From SpaceID
}

// Op returns OpPing.
func (*Ping) Op() Op { return OpPing }

func (m *Ping) encode(e *Encoder) { e.Uint(uint64(m.From)) }
func (m *Ping) decode(d *Decoder) { m.From = SpaceID(d.Uint()) }

// PingAck answers a Ping; it carries the responder's space id so the owner
// can detect that a client endpoint has been reused by a new incarnation.
type PingAck struct {
	// From identifies the responding client.
	From SpaceID
}

// Op returns OpPingAck.
func (*PingAck) Op() Op { return OpPingAck }

func (m *PingAck) encode(e *Encoder) { e.Uint(uint64(m.From)) }
func (m *PingAck) decode(d *Decoder) { m.From = SpaceID(d.Uint()) }

// CleanBatch removes the calling client from the dirty sets of several
// objects at once. Semantically identical to the corresponding sequence of
// Clean messages, at a fraction of the exchanges.
type CleanBatch struct {
	// Client identifies the space dropping the references.
	Client SpaceID
	// Objs, Seqs and Strongs are parallel: entry i cleans object Objs[i]
	// with sequence number Seqs[i], strongly if Strongs[i].
	Objs    []uint64
	Seqs    []uint64
	Strongs []bool
	// Owner names the space the batch is addressed to; see Clean.Owner.
	Owner SpaceID
}

// Op returns OpCleanBatch.
func (*CleanBatch) Op() Op { return OpCleanBatch }

func (m *CleanBatch) encode(e *Encoder) {
	e.Uint(uint64(m.Client))
	e.Uint(uint64(len(m.Objs)))
	for i := range m.Objs {
		e.Uint(m.Objs[i])
		e.Uint(m.Seqs[i])
		e.Bool(m.Strongs[i])
	}
	e.Uint(uint64(m.Owner))
}

func (m *CleanBatch) decode(d *Decoder) {
	m.Client = SpaceID(d.Uint())
	n := d.Uint()
	if n > MaxStringLen/3 {
		d.fail("clean batch too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Objs = append(m.Objs, d.Uint())
		m.Seqs = append(m.Seqs, d.Uint())
		m.Strongs = append(m.Strongs, d.Bool())
	}
	m.Owner = SpaceID(d.Uint())
}

// Lease renews the calling client's liveness lease at the receiving
// owner, covering every dirty entry the owner holds for the client. In
// lease mode an owner drops the entries of clients whose lease lapses —
// the client-paced dual of the pinging design.
type Lease struct {
	// Client identifies the renewing space.
	Client SpaceID
	// ClientEndpoints refresh where the client can be reached.
	ClientEndpoints []string
	// Owner names the space the renewal is addressed to; a different
	// receiver is a new incarnation that holds none of this client's
	// dirty entries, and the renewal must fail rather than silently
	// succeed against it. Zero means unaddressed.
	Owner SpaceID
}

// Op returns OpLease.
func (*Lease) Op() Op { return OpLease }

func (m *Lease) encode(e *Encoder) {
	e.Uint(uint64(m.Client))
	e.StringSlice(m.ClientEndpoints)
	e.Uint(uint64(m.Owner))
}

func (m *Lease) decode(d *Decoder) {
	m.Client = SpaceID(d.Uint())
	m.ClientEndpoints = d.StringSlice()
	m.Owner = SpaceID(d.Uint())
}

// LeaseAck acknowledges a Lease with the granted duration.
type LeaseAck struct {
	// Status is StatusOK when the lease was renewed.
	Status Status
	// GrantedMillis is the renewed lease's time-to-live.
	GrantedMillis uint64
}

// Op returns OpLeaseAck.
func (*LeaseAck) Op() Op { return OpLeaseAck }

func (m *LeaseAck) encode(e *Encoder) {
	e.Uint(uint64(m.Status))
	e.Uint(m.GrantedMillis)
}

func (m *LeaseAck) decode(d *Decoder) {
	m.Status = Status(d.Uint())
	m.GrantedMillis = d.Uint()
}

// CancelCall asks the receiving space to cancel an in-flight call it is
// serving. It arrives on a separate connection from the call itself (the
// call's connection is busy awaiting the Result) and is answered with a
// CancelAck. Cancellation is cooperative: the served method observes it
// through its context.
type CancelCall struct {
	// ID is the Call.ID of the invocation to cancel.
	ID uint64
}

// Op returns OpCancelCall.
func (*CancelCall) Op() Op { return OpCancelCall }

func (m *CancelCall) encode(e *Encoder) { e.Uint(m.ID) }
func (m *CancelCall) decode(d *Decoder) { m.ID = d.Uint() }

// CancelAck answers a CancelCall.
type CancelAck struct {
	// Status is StatusOK when the call was found in flight and alerted;
	// StatusNoSuchObject when it had already finished or never arrived.
	Status Status
}

// Op returns OpCancelAck.
func (*CancelAck) Op() Op { return OpCancelAck }

func (m *CancelAck) encode(e *Encoder) { e.Uint(uint64(m.Status)) }
func (m *CancelAck) decode(d *Decoder) { m.Status = Status(d.Uint()) }

// ResultAck acknowledges a Result whose NeedAck flag was set, confirming
// that the caller has unmarshaled the returned network references and
// registered itself with their owners.
type ResultAck struct{}

// Op returns OpResultAck.
func (*ResultAck) Op() Op { return OpResultAck }

func (m *ResultAck) encode(*Encoder) {}
func (m *ResultAck) decode(*Decoder) {}

// encPool recycles Encoder headers. Marshal is on the per-call hot path
// and msg.encode is an interface call, so a stack-allocated encoder would
// escape; pooling keeps the steady state allocation-free when the caller
// also supplies a reusable buf.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// Marshal encodes msg, including its op byte, appending to buf (which may
// be nil). The result is a complete frame payload.
func Marshal(buf []byte, msg Message) []byte {
	e := encPool.Get().(*Encoder)
	if buf != nil {
		e.buf = buf[:0]
	} else {
		e.buf = e.buf[:0]
	}
	e.Uint(uint64(msg.Op()))
	msg.encode(e)
	out := e.buf
	// Detach before pooling so a future Marshal cannot scribble over the
	// bytes this caller still holds.
	e.buf = nil
	encPool.Put(e)
	return out
}

// ErrUnknownOp reports a message with an unrecognized op byte.
var ErrUnknownOp = errors.New("wire: unknown message op")

// PeekOp returns the op of a marshaled frame without decoding the rest,
// so middleware (fault injection, tracing) can classify traffic cheaply.
// A mux envelope is transparent: PeekOp skips the header and reports the
// inner message's op, so per-message-type policies (chaos fault rules)
// behave identically whether or not a frame rides a session. It returns
// OpInvalid when the frame is empty, does not start with a valid uvarint,
// or carries a nested envelope.
func PeekOp(frame []byte) Op {
	op, n := binary.Uvarint(frame)
	if n <= 0 || op > uint64(maxOp) {
		return OpInvalid
	}
	if Op(op) != OpMux {
		// Session-control frames (OpData, OpWindowUpdate, OpFlowPing/Pong)
		// travel naked at the top level and classify as themselves.
		return Op(op)
	}
	rest := frame[n:]
	_, idn := binary.Uvarint(rest)
	if idn <= 0 {
		return OpInvalid
	}
	inner, m := binary.Uvarint(rest[idn:])
	if m <= 0 {
		return OpInvalid
	}
	// Inside the envelope only ordinary messages appear — plus the
	// stream-0 control messages (SessHello, PipeHello) and the pipelined
	// invocation messages, which are muxed like calls. Envelopes do not
	// nest; naked session-control ops and batch frames never appear
	// wrapped.
	if inner > uint64(maxOp) {
		return OpInvalid
	}
	switch Op(inner) {
	case OpMux, OpData, OpWindowUpdate, OpFlowPing, OpFlowPong, OpBatch:
		return OpInvalid
	}
	return Op(inner)
}

// Unmarshal decodes a frame payload produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	d := NewDecoder(b)
	op := Op(d.Uint())
	var m Message
	switch op {
	case OpCall:
		m = new(Call)
	case OpResult:
		m = new(Result)
	case OpDirty:
		m = new(Dirty)
	case OpDirtyAck:
		m = new(DirtyAck)
	case OpClean:
		m = new(Clean)
	case OpCleanAck:
		m = new(CleanAck)
	case OpPing:
		m = new(Ping)
	case OpPingAck:
		m = new(PingAck)
	case OpResultAck:
		m = new(ResultAck)
	case OpCleanBatch:
		m = new(CleanBatch)
	case OpLease:
		m = new(Lease)
	case OpLeaseAck:
		m = new(LeaseAck)
	case OpCancelCall:
		m = new(CancelCall)
	case OpCancelAck:
		m = new(CancelAck)
	case OpSessHello:
		m = new(SessHello)
	case OpPipeHello:
		m = new(PipeHello)
	case OpPipeCall:
		m = new(PipeCall)
	case OpPromiseResolve:
		m = new(PromiseResolve)
	case OpOneWay:
		m = new(OneWay)
	case OpPeerHello:
		m = new(PeerHello)
	case OpCycleQuery:
		m = new(CycleQuery)
	case OpCycleAnswer:
		m = new(CycleAnswer)
	case OpCycleCollect:
		m = new(CycleCollect)
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %d", ErrUnknownOp, uint8(op))
	}
	m.decode(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", op, err)
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("wire: decoding %v: %w: %d trailing bytes", op, ErrCorrupt, d.Len())
	}
	return m, nil
}

// ErrWrongOp reports a frame whose op does not match the message passed
// to UnmarshalInto.
var ErrWrongOp = errors.New("wire: frame op does not match message")

// UnmarshalInto decodes a frame payload into the caller-supplied
// message, whose type must match the frame's op byte. It is the hot-path
// twin of Unmarshal: callers that pool their Call and Result structs
// decode without allocating a message per frame. Decoded byte fields
// alias b, exactly as with Unmarshal.
func UnmarshalInto(b []byte, m Message) error {
	var d Decoder
	d.buf = b
	op := Op(d.Uint())
	if err := d.Err(); err != nil {
		return err
	}
	if op != m.Op() {
		return fmt.Errorf("%w: frame carries %v, want %v", ErrWrongOp, op, m.Op())
	}
	// Dispatch on the concrete hot types so the decoder never escapes
	// through an interface call and can live on this stack frame; any
	// other message type pays for its own heap decoder in the slow twin.
	switch t := m.(type) {
	case *Call:
		t.decode(&d)
	case *Result:
		t.decode(&d)
	case *ResultAck:
		t.decode(&d)
	default:
		return unmarshalIntoSlow(b, op, m)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("wire: decoding %v: %w", op, err)
	}
	if d.Len() != 0 {
		return fmt.Errorf("wire: decoding %v: %w: %d trailing bytes", op, ErrCorrupt, d.Len())
	}
	return nil
}

// unmarshalIntoSlow finishes an UnmarshalInto for the non-pooled message
// types through the Message interface, with its own decoder. Kept out of
// UnmarshalInto so the interface call cannot force the hot path's decoder
// to escape.
func unmarshalIntoSlow(b []byte, op Op, m Message) error {
	var d Decoder
	d.buf = b
	d.Uint() // skip the already-verified op
	m.decode(&d)
	if err := d.Err(); err != nil {
		return fmt.Errorf("wire: decoding %v: %w", op, err)
	}
	if d.Len() != 0 {
		return fmt.Errorf("wire: decoding %v: %w: %d trailing bytes", op, ErrCorrupt, d.Len())
	}
	return nil
}
