package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestDataFrameRoundTrip(t *testing.T) {
	chunk := bytes.Repeat([]byte("d"), 1024)
	frame := AppendDataHeader(nil, 42, DataFlagLast)
	frame = append(frame, chunk...)
	id, flags, got, err := SplitData(frame)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || flags != DataFlagLast || !bytes.Equal(got, chunk) {
		t.Fatalf("round trip mismatch: id=%d flags=%d len=%d", id, flags, len(got))
	}
	if PeekOp(frame) != OpData {
		t.Fatalf("PeekOp = %v, want data", PeekOp(frame))
	}
	if _, _, _, err := SplitData(Marshal(nil, &Ping{From: 1})); !errors.Is(err, ErrNotFlow) {
		t.Fatalf("SplitData on a ping: err = %v, want ErrNotFlow", err)
	}
}

func TestWindowUpdateRoundTrip(t *testing.T) {
	for _, tc := range []struct{ id, inc uint64 }{{0, 1 << 20}, {7, 65536}, {1 << 40, 1}} {
		frame := AppendWindowUpdate(nil, tc.id, tc.inc)
		id, inc, err := SplitWindowUpdate(frame)
		if err != nil {
			t.Fatal(err)
		}
		if id != tc.id || inc != tc.inc {
			t.Fatalf("round trip mismatch: got (%d,%d), want (%d,%d)", id, inc, tc.id, tc.inc)
		}
		if PeekOp(frame) != OpWindowUpdate {
			t.Fatalf("PeekOp = %v, want window-update", PeekOp(frame))
		}
	}
	if _, _, err := SplitWindowUpdate(append(AppendWindowUpdate(nil, 1, 2), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestFlowPingRoundTrip(t *testing.T) {
	for _, pong := range []bool{false, true} {
		frame := AppendFlowPing(nil, 99, pong)
		token, gotPong, err := SplitFlowPing(frame)
		if err != nil {
			t.Fatal(err)
		}
		if token != 99 || gotPong != pong {
			t.Fatalf("round trip mismatch: token=%d pong=%v", token, gotPong)
		}
		want := OpFlowPing
		if pong {
			want = OpFlowPong
		}
		if PeekOp(frame) != want {
			t.Fatalf("PeekOp = %v, want %v", PeekOp(frame), want)
		}
	}
}

// TestPeekOpSessHello: the capability hello classifies as OpSessHello both
// naked and wrapped in the mux envelope on stream 0 — the wrapped form is
// how it actually travels, and the chaos transport's per-op rules must see
// through the envelope.
func TestPeekOpSessHello(t *testing.T) {
	hello := Marshal(nil, &SessHello{StreamWindow: 1, SessionWindow: 2, ChunkSize: 3})
	if PeekOp(hello) != OpSessHello {
		t.Fatalf("naked hello: PeekOp = %v", PeekOp(hello))
	}
	wrapped := AppendMuxHeader(nil, 0)
	wrapped = append(wrapped, hello...)
	if PeekOp(wrapped) != OpSessHello {
		t.Fatalf("wrapped hello: PeekOp = %v", PeekOp(wrapped))
	}
	// Naked flow frames never nest inside the envelope; a wrapped OpData
	// is corrupt, not classifiable.
	bad := AppendMuxHeader(nil, 7)
	bad = AppendDataHeader(bad, 7, 0)
	if PeekOp(bad) != OpInvalid {
		t.Fatalf("wrapped data: PeekOp = %v, want invalid", PeekOp(bad))
	}
}

// TestFlowTruncationDeterministic cuts every flow frame at every byte
// boundary: each prefix must decode or fail deterministically with no
// panic, the same property the ordinary message decoders pin.
func TestFlowTruncationDeterministic(t *testing.T) {
	frames := [][]byte{
		append(AppendDataHeader(nil, 1<<33, DataFlagLast), bytes.Repeat([]byte("x"), 64)...),
		AppendDataHeader(nil, 3, DataFlagReset),
		AppendWindowUpdate(nil, 0, 1<<20),
		AppendWindowUpdate(nil, 1<<50, 64<<10),
		AppendFlowPing(nil, 1<<62, false),
		AppendFlowPing(nil, 7, true),
	}
	for _, frame := range frames {
		for cut := 0; cut < len(frame); cut++ {
			prefix := frame[:cut]
			for i := 0; i < 2; i++ {
				_, _, _, errD := SplitData(prefix)
				_, _, errW := SplitWindowUpdate(prefix)
				_, _, errP := SplitFlowPing(prefix)
				if i == 0 {
					continue
				}
				_, _, _, errD2 := SplitData(prefix)
				_, _, errW2 := SplitWindowUpdate(prefix)
				_, _, errP2 := SplitFlowPing(prefix)
				if (errD == nil) != (errD2 == nil) || (errW == nil) != (errW2 == nil) || (errP == nil) != (errP2 == nil) {
					t.Fatalf("cut at %d: nondeterministic outcome", cut)
				}
			}
			_ = PeekOp(prefix)
		}
	}
}

// FuzzFlowFrames asserts the flow-frame splitters never panic and that
// whatever they accept re-encodes to the same bytes.
func FuzzFlowFrames(f *testing.F) {
	f.Add(append(AppendDataHeader(nil, 9, DataFlagLast), []byte("chunk")...))
	f.Add(AppendWindowUpdate(nil, 0, 1<<20))
	f.Add(AppendFlowPing(nil, 42, false))
	f.Add(AppendFlowPing(nil, 42, true))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if id, flags, chunk, err := SplitData(data); err == nil {
			re := append(AppendDataHeader(nil, id, flags), chunk...)
			if !bytes.Equal(re, data) {
				t.Fatalf("data re-encode mismatch:\n%x\n%x", re, data)
			}
		}
		if id, inc, err := SplitWindowUpdate(data); err == nil {
			if !bytes.Equal(AppendWindowUpdate(nil, id, inc), data) {
				t.Fatal("window-update re-encode mismatch")
			}
		}
		if token, pong, err := SplitFlowPing(data); err == nil {
			if !bytes.Equal(AppendFlowPing(nil, token, pong), data) {
				t.Fatal("keepalive re-encode mismatch")
			}
		}
		_ = PeekOp(data)
	})
}

// TestDataHeaderAllocs pins the chunking hot path: building and splitting
// a data frame around a reused buffer must not allocate — the session
// writer does this once per 64KB chunk of every large payload.
func TestDataHeaderAllocs(t *testing.T) {
	chunk := bytes.Repeat([]byte("c"), 4096)
	buf := make([]byte, 0, 4096+16)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendDataHeader(buf[:0], 1<<20, DataFlagLast)
		buf = append(buf, chunk...)
	})
	if allocs != 0 {
		t.Fatalf("AppendDataHeader into reused buffer: %v allocs/op, want 0", allocs)
	}
	frame := buf
	allocs = testing.AllocsPerRun(200, func() {
		_, _, _, err := SplitData(frame)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SplitData: %v allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		buf = AppendWindowUpdate(buf[:0], 42, 64<<10)
	})
	if allocs != 0 {
		t.Fatalf("AppendWindowUpdate into reused buffer: %v allocs/op, want 0", allocs)
	}
}
