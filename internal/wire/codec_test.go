package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeScalars(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint(0)
	e.Uint(1)
	e.Uint(math.MaxUint64)
	e.Int(-1)
	e.Int(math.MinInt64)
	e.Int(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.Float(3.25)
	e.Float(math.Inf(-1))
	e.Complex(complex(1.5, -2.5))
	e.String("héllo")
	e.String("")
	e.BytesField([]byte{0, 1, 2})
	e.BytesField(nil)
	e.StringSlice([]string{"a", "", "ccc"})
	e.StringSlice(nil)

	d := NewDecoder(e.Bytes())
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"uint0", d.Uint(), uint64(0)},
		{"uint1", d.Uint(), uint64(1)},
		{"uintMax", d.Uint(), uint64(math.MaxUint64)},
		{"int-1", d.Int(), int64(-1)},
		{"intMin", d.Int(), int64(math.MinInt64)},
		{"intMax", d.Int(), int64(math.MaxInt64)},
		{"boolT", d.Bool(), true},
		{"boolF", d.Bool(), false},
		{"float", d.Float(), 3.25},
		{"floatInf", d.Float(), math.Inf(-1)},
		{"complex", d.Complex(), complex(1.5, -2.5)},
		{"string", d.String(), "héllo"},
		{"stringEmpty", d.String(), ""},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	if b := d.BytesField(); !bytes.Equal(b, []byte{0, 1, 2}) {
		t.Errorf("bytes: got %v", b)
	}
	if b := d.BytesField(); len(b) != 0 {
		t.Errorf("nil bytes: got %v", b)
	}
	ss := d.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("string slice: got %v", ss)
	}
	if ss := d.StringSlice(); len(ss) != 0 {
		t.Errorf("nil string slice: got %v", ss)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("trailing bytes: %d", d.Len())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0xff}) // truncated uvarint
	_ = d.Uint()
	if d.Err() == nil {
		t.Fatal("want error after truncated uvarint")
	}
	first := d.Err()
	_ = d.String()
	_ = d.Uint()
	if d.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, d.Err())
	}
}

func TestDecoderShortString(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint(100) // claims 100 bytes follow
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("want short-bytes error, got %q err=%v", s, d.Err())
	}
}

func TestDecoderHugeLengthRejected(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint(uint64(MaxStringLen) + 1)
	d := NewDecoder(e.Bytes())
	d.BytesField()
	if d.Err() == nil {
		t.Fatal("want too-large error")
	}
}

func TestDecoderBadBool(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint(7)
	d := NewDecoder(e.Bytes())
	d.Bool()
	if d.Err() == nil {
		t.Fatal("want bad-bool error")
	}
}

func TestWireRepRoundTrip(t *testing.T) {
	f := func(owner uint64, eps []string, index uint64) bool {
		w := WireRep{Owner: SpaceID(owner), Endpoints: eps, Index: index}
		e := NewEncoder(nil)
		e.WireRep(w)
		d := NewDecoder(e.Bytes())
		got := d.WireRep()
		if d.Err() != nil || d.Len() != 0 {
			return false
		}
		if got.Owner != w.Owner || got.Index != w.Index || len(got.Endpoints) != len(w.Endpoints) {
			return false
		}
		for i := range eps {
			if got.Endpoints[i] != eps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.Uint(v)
		d := NewDecoder(e.Bytes())
		return d.Uint() == v && d.Err() == nil && d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.Int(v)
		d := NewDecoder(e.Bytes())
		return d.Int() == v && d.Err() == nil && d.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatRoundTripQuick(t *testing.T) {
	f := func(v float64) bool {
		e := NewEncoder(nil)
		e.Float(v)
		d := NewDecoder(e.Bytes())
		got := d.Float()
		// NaN compares unequal to itself; compare bit patterns instead.
		return math.Float64bits(got) == math.Float64bits(v) && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceIDUniqueNonZero(t *testing.T) {
	seen := make(map[SpaceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpaceID()
		if id == 0 {
			t.Fatal("zero space id")
		}
		if seen[id] {
			t.Fatalf("duplicate space id %v", id)
		}
		seen[id] = true
	}
}

func TestSplitJoinEndpoint(t *testing.T) {
	proto, addr, err := SplitEndpoint("tcp:127.0.0.1:9000")
	if err != nil || proto != "tcp" || addr != "127.0.0.1:9000" {
		t.Fatalf("got %q %q %v", proto, addr, err)
	}
	if JoinEndpoint("inmem", "alpha") != "inmem:alpha" {
		t.Fatal("join mismatch")
	}
	for _, bad := range []string{"", "tcp", ":addr"} {
		if _, _, err := SplitEndpoint(bad); err == nil {
			t.Errorf("SplitEndpoint(%q): want error", bad)
		}
	}
	// An empty address is allowed: it means "transport picks".
	if proto, addr, err := SplitEndpoint("tcp:"); err != nil || proto != "tcp" || addr != "" {
		t.Errorf("SplitEndpoint(\"tcp:\"): %q %q %v", proto, addr, err)
	}
}

func TestWireRepKeyAndZero(t *testing.T) {
	var zero WireRep
	if !zero.IsZero() {
		t.Fatal("zero wireRep not IsZero")
	}
	w := WireRep{Owner: 7, Endpoints: []string{"inmem:a"}, Index: 3}
	if w.IsZero() {
		t.Fatal("non-zero wireRep reported zero")
	}
	w2 := WireRep{Owner: 7, Endpoints: []string{"tcp:other"}, Index: 3}
	if w.Key() != w2.Key() {
		t.Fatal("keys should ignore endpoints")
	}
	if w.Key() == (WireRep{Owner: 7, Index: 4}).Key() {
		t.Fatal("distinct indices should yield distinct keys")
	}
}
