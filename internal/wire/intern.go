package wire

import (
	"sync"
	"sync/atomic"
)

// Method names recur on every call, but decoding a length-prefixed
// string allocates a fresh copy each time. The intern table maps the
// raw bytes of small recurring strings to one canonical Go string, so
// the steady-state decode path allocates nothing: the read side is a
// lock-free map lookup (the []byte→string map-index conversion does not
// allocate), and the write side copies the whole table under a mutex —
// new method names appear a handful of times per process, then never
// again.
const (
	// maxInternedLen bounds the size of an internable string: method
	// names are short, and long strings are not worth pinning forever.
	maxInternedLen = 64
	// maxInterned bounds the table so a hostile peer streaming distinct
	// garbage names cannot grow it without bound; once full, new names
	// fall back to plain allocation.
	maxInterned = 4096
)

var (
	internMu  sync.Mutex
	internTab atomic.Pointer[map[string]string]
)

// Intern returns a canonical string equal to b, allocating only the
// first time a given value is seen (and never once the table is full).
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternedLen {
		return string(b)
	}
	if m := internTab.Load(); m != nil {
		if s, ok := (*m)[string(b)]; ok {
			return s
		}
	}
	internMu.Lock()
	defer internMu.Unlock()
	old := internTab.Load()
	if old != nil {
		if s, ok := (*old)[string(b)]; ok {
			return s
		}
		if len(*old) >= maxInterned {
			return string(b)
		}
	}
	next := make(map[string]string, 8)
	if old != nil {
		next = make(map[string]string, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	s := string(b)
	next[s] = s
	internTab.Store(&next)
	return s
}

// InternedString consumes a length-prefixed string, interning the value
// so hot-path decoders (method names) stop allocating per message.
func (d *Decoder) InternedString() string { return Intern(d.BytesField()) }
