// Package wire defines the on-the-wire vocabulary of the network objects
// runtime: space identifiers, wire representations of network objects
// (wireReps), the protocol message set, and the framing used to carry
// messages over byte-stream transports.
//
// A network object is marshaled by transmitting its wireRep, which consists
// of a unique identifier for the owner space, the endpoints at which the
// owner can be reached, and the index of the object in the owner's object
// table. Carrying the owner's endpoints inside the wireRep is what makes
// third-party transfers work: any process that receives a wireRep can
// connect directly to the owner, regardless of who sent the reference.
package wire

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// SpaceID uniquely identifies a process instance (an address space)
// participating in the network objects system. IDs are drawn at random at
// space creation so that restarted processes are distinguishable from their
// previous incarnations, which is what lets owners discard dirty-set entries
// for dead clients without confusing them with reborn ones.
type SpaceID uint64

// NewSpaceID returns a fresh, cryptographically random space identifier.
// The zero value is reserved to mean "no space".
func NewSpaceID() SpaceID {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("wire: reading random space id: %v", err))
		}
		id := SpaceID(binary.BigEndian.Uint64(b[:]))
		if id != 0 {
			return id
		}
	}
}

// String renders the id in the short hexadecimal form used in logs.
func (id SpaceID) String() string { return fmt.Sprintf("space-%016x", uint64(id)) }

// Well-known object table indices. Index zero is never a valid object so
// that a zero-valued wireRep is detectably invalid; index one is the
// bootstrap agent through which named objects are published and imported.
const (
	// InvalidIndex is never assigned to an exported object.
	InvalidIndex uint64 = 0
	// AgentIndex is the well-known index of the per-space agent object.
	AgentIndex uint64 = 1
	// FirstUserIndex is the first index handed to ordinary exports.
	FirstUserIndex uint64 = 2
)

// WireRep is the marshaled form of a network object reference: enough
// information for any receiver to locate the owner and name the concrete
// object within it.
type WireRep struct {
	// Owner is the space that allocated the concrete object.
	Owner SpaceID
	// Endpoints lists transport endpoints ("tcp:host:port", "inmem:name")
	// at which the owner accepts connections, in preference order.
	Endpoints []string
	// Index is the object's slot in the owner's export table.
	Index uint64
}

// IsZero reports whether w is the zero wireRep, the marshaled form of a nil
// network object reference.
func (w WireRep) IsZero() bool { return w.Owner == 0 && w.Index == 0 && len(w.Endpoints) == 0 }

// Key returns the identity of the concrete object named by w. Two wireReps
// denote the same object exactly when their keys are equal; endpoints are
// deliberately excluded because an owner may be reachable many ways.
func (w WireRep) Key() Key { return Key{Owner: w.Owner, Index: w.Index} }

// String renders w for logs and error messages.
func (w WireRep) String() string {
	return fmt.Sprintf("%v/%d@[%s]", w.Owner, w.Index, strings.Join(w.Endpoints, ","))
}

// Key identifies a concrete network object globally: the owner space plus
// the object's index at the owner. It is the comparable form of a WireRep
// and is used as the object-table lookup key in every space.
type Key struct {
	Owner SpaceID
	Index uint64
}

// String renders k for logs and error messages.
func (k Key) String() string { return fmt.Sprintf("%v/%d", k.Owner, k.Index) }

// ErrBadEndpoint reports a malformed endpoint string.
var ErrBadEndpoint = errors.New("wire: malformed endpoint")

// SplitEndpoint splits an endpoint string "proto:address" into its
// transport protocol name and transport-specific address. An empty
// address is permitted — when listening it asks the transport to choose
// one — but the protocol part is mandatory.
func SplitEndpoint(ep string) (proto, addr string, err error) {
	i := strings.IndexByte(ep, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, ep)
	}
	return ep[:i], ep[i+1:], nil
}

// JoinEndpoint forms an endpoint string from a protocol and address.
func JoinEndpoint(proto, addr string) string { return proto + ":" + addr }
