package wire

// This file defines the messages behind the scalable-collector work:
// session peer identification (which lets a healthy mux session subsume
// the owner's liveness probes for that peer) and the cross-space cycle
// detector's query/collect exchange.

// PeerHello advertises the sending endpoint's space identity on a mux
// session. It rides reserved stream id 0 after SessHello and PipeHello;
// legacy peers discard it harmlessly. A session whose peer has identified
// itself can stand in for collector liveness traffic: the keepalives
// already flowing prove that *that specific space* — not merely some
// process at the endpoint — is alive.
type PeerHello struct {
	// Space is the sender's space id.
	Space SpaceID
}

// Op returns OpPeerHello.
func (*PeerHello) Op() Op { return OpPeerHello }

func (m *PeerHello) encode(e *Encoder) { e.Uint(uint64(m.Space)) }
func (m *PeerHello) decode(d *Decoder) { m.Space = SpaceID(d.Uint()) }

// maxCycleKeys bounds the keys one cycle query or collect may carry, so a
// malformed length prefix cannot balloon the decoder.
const maxCycleKeys = MaxStringLen / 3

// CycleQuery asks a client space to report the back-references behind its
// surrogates for the sender's objects. The owner sends it while running a
// trial-deletion pass over exports whose only liveness is remote dirty
// entries; the answer tells it whether those entries stand for references
// the client's application actually holds, or only for references held by
// the client's own exported objects — the edges a cross-space cycle is
// made of.
type CycleQuery struct {
	// From identifies the querying owner; Indices name its objects.
	From SpaceID
	// Indices are the owner's export indices to report on.
	Indices []uint64
	// Owner names the space the query is addressed to (the client being
	// asked), guarding against endpoint reuse by a new incarnation. Zero
	// means unaddressed.
	Owner SpaceID
}

// Op returns OpCycleQuery.
func (*CycleQuery) Op() Op { return OpCycleQuery }

func (m *CycleQuery) encode(e *Encoder) {
	e.Uint(uint64(m.From))
	e.Uint(uint64(len(m.Indices)))
	for _, ix := range m.Indices {
		e.Uint(ix)
	}
	e.Uint(uint64(m.Owner))
}

func (m *CycleQuery) decode(d *Decoder) {
	m.From = SpaceID(d.Uint())
	n := d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle query too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Indices = append(m.Indices, d.Uint())
	}
	m.Owner = SpaceID(d.Uint())
}

// CycleRef reports one back-reference edge: the responder's exported
// object at HolderIndex holds a reference to the queried object at
// RefIndex (an index in the *querier's* export table).
type CycleRef struct {
	// RefIndex is the queried owner's export index the edge points at.
	RefIndex uint64
	// HolderIndex is the responder's own export index of the holding
	// object.
	HolderIndex uint64
}

// CycleHolder describes one of the responder's exported objects that
// holds queried references, with the facts the querier's trial deletion
// needs about it: whether it is pinned locally and which spaces hold it.
type CycleHolder struct {
	// Index is the holder's index in the responder's export table.
	Index uint64
	// Rooted reports that the holder is alive for reasons other than its
	// dirty set: a well-known pinned export, or a reference in transit.
	Rooted bool
	// Clients are the spaces in the holder's dirty set.
	Clients []SpaceID
}

// CycleAnswer reports the responder's side of a cycle query. For each
// queried index: whether the surrogate is rooted (held by the responding
// application beyond what its exported objects declare, or unaccountable
// — both conservatively keep the object alive) and the back-reference
// edges from the responder's own exports.
type CycleAnswer struct {
	// Status is StatusOK when the responder ran the scan; anything else
	// aborts the pass conservatively.
	Status Status
	// From identifies the responding client.
	From SpaceID
	// Rooted lists the queried indices whose surrogates the responder
	// cannot prove to be held only by its exported objects.
	Rooted []uint64
	// Refs are the back-reference edges from the responder's exports to
	// the queried objects.
	Refs []CycleRef
	// Holders describes each distinct holder appearing in Refs.
	Holders []CycleHolder
}

// Op returns OpCycleAnswer.
func (*CycleAnswer) Op() Op { return OpCycleAnswer }

func (m *CycleAnswer) encode(e *Encoder) {
	e.Uint(uint64(m.Status))
	e.Uint(uint64(m.From))
	e.Uint(uint64(len(m.Rooted)))
	for _, ix := range m.Rooted {
		e.Uint(ix)
	}
	e.Uint(uint64(len(m.Refs)))
	for _, r := range m.Refs {
		e.Uint(r.RefIndex)
		e.Uint(r.HolderIndex)
	}
	e.Uint(uint64(len(m.Holders)))
	for _, h := range m.Holders {
		e.Uint(h.Index)
		e.Bool(h.Rooted)
		e.Uint(uint64(len(h.Clients)))
		for _, c := range h.Clients {
			e.Uint(uint64(c))
		}
	}
}

func (m *CycleAnswer) decode(d *Decoder) {
	m.Status = Status(d.Uint())
	m.From = SpaceID(d.Uint())
	n := d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle answer too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Rooted = append(m.Rooted, d.Uint())
	}
	n = d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle answer too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Refs = append(m.Refs, CycleRef{RefIndex: d.Uint(), HolderIndex: d.Uint()})
	}
	n = d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle answer too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		h := CycleHolder{Index: d.Uint(), Rooted: d.Bool()}
		c := d.Uint()
		if c > maxCycleKeys {
			d.fail("cycle answer too large")
			return
		}
		for j := uint64(0); j < c && d.Err() == nil; j++ {
			h.Clients = append(h.Clients, SpaceID(d.Uint()))
		}
		m.Holders = append(m.Holders, h)
	}
}

// CycleCollect instructs the receiving owner to reclaim exported objects
// that a completed trial-deletion pass proved to be members of a dead
// cross-space cycle. The receiver re-verifies each entry locally (it must
// be unpinned, with no reference in transit) before dropping the dirty
// entries held by the cycle's member spaces. Answered with a CleanAck.
type CycleCollect struct {
	// From identifies the space that ran the detection pass.
	From SpaceID
	// Indices are the receiver's export indices to reclaim.
	Indices []uint64
	// Members are the spaces participating in the dead cycle; only their
	// dirty entries are dropped, so a concurrent import by an outside
	// space survives.
	Members []SpaceID
	// Owner names the addressed space, guarding against endpoint reuse by
	// a new incarnation. Zero means unaddressed.
	Owner SpaceID
}

// Op returns OpCycleCollect.
func (*CycleCollect) Op() Op { return OpCycleCollect }

func (m *CycleCollect) encode(e *Encoder) {
	e.Uint(uint64(m.From))
	e.Uint(uint64(len(m.Indices)))
	for _, ix := range m.Indices {
		e.Uint(ix)
	}
	e.Uint(uint64(len(m.Members)))
	for _, s := range m.Members {
		e.Uint(uint64(s))
	}
	e.Uint(uint64(m.Owner))
}

func (m *CycleCollect) decode(d *Decoder) {
	m.From = SpaceID(d.Uint())
	n := d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle collect too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Indices = append(m.Indices, d.Uint())
	}
	n = d.Uint()
	if n > maxCycleKeys {
		d.fail("cycle collect too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.Members = append(m.Members, SpaceID(d.Uint()))
	}
	m.Owner = SpaceID(d.Uint())
}
