package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the session flow-control frames, in the HTTP/2 style.
// A flow-enabled session splits any muxed payload larger than the chunk
// size into bounded OpData frames
//
//	[OpData uvarint][stream id uvarint][flags uvarint][chunk bytes]
//
// interleaved round-robin across streams by the session writer, with
// credit granted back by the receiver through
//
//	[OpWindowUpdate uvarint][stream id uvarint][increment uvarint]
//
// (stream id 0 addresses the session-level window). Keepalives travel as
//
//	[OpFlowPing uvarint][token uvarint]  /  [OpFlowPong uvarint][token uvarint]
//
// None of these frames use the Message encode path: OpData is the bulk
// hot path and the others are tiny fixed-shape control frames, so all
// four are built with append-style helpers that allocate nothing.
//
// Capability is advertised by the SessHello message, which is an ordinary
// Message wrapped in the mux envelope on reserved stream id 0 so that
// peers without flow support discard it harmlessly. Naked flow frames are
// only sent after the peer's hello arrives.

// Data frame flags.
const (
	// DataFlagLast marks the final chunk of a message: the receiver's
	// assembly is complete and is delivered to the stream.
	DataFlagLast = 1 << 0
	// DataFlagReset aborts the stream's partial assembly: the sender
	// abandoned the message mid-stream (deadline, cancel, stream close).
	// The receiver drops the assembly and tears the stream down.
	DataFlagReset = 1 << 1
)

// ErrNotFlow reports a frame that does not carry the expected flow op.
var ErrNotFlow = errors.New("wire: frame is not a flow frame")

// SessHello advertises a session endpoint's flow-control capability and
// receive windows. Each direction is independent: a sender chunks using
// the windows the receiver advertised.
type SessHello struct {
	// StreamWindow is the sender's per-stream receive window in bytes:
	// how many data bytes a peer may have in flight on one stream before
	// waiting for window updates.
	StreamWindow uint64
	// SessionWindow is the session-level receive window in bytes,
	// bounding total data bytes in flight across all streams.
	SessionWindow uint64
	// ChunkSize is the largest data chunk the sender is willing to
	// receive; peers must not send larger OpData frames.
	ChunkSize uint64
}

// Op returns OpSessHello.
func (*SessHello) Op() Op { return OpSessHello }

func (m *SessHello) encode(e *Encoder) {
	e.Uint(m.StreamWindow)
	e.Uint(m.SessionWindow)
	e.Uint(m.ChunkSize)
}

func (m *SessHello) decode(d *Decoder) {
	m.StreamWindow = d.Uint()
	m.SessionWindow = d.Uint()
	m.ChunkSize = d.Uint()
}

// AppendDataHeader appends the data-frame header — op, stream id and
// flags — to dst. The chunk bytes follow it.
func AppendDataHeader(dst []byte, id uint64, flags uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(OpData))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, flags)
	return dst
}

// SplitData splits a data frame into its stream id, flags and chunk. The
// returned chunk aliases frame.
func SplitData(frame []byte) (id, flags uint64, chunk []byte, err error) {
	op, n := binary.Uvarint(frame)
	if n <= 0 || Op(op) != OpData {
		return 0, 0, nil, ErrNotFlow
	}
	id, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad data stream id", ErrCorrupt)
	}
	flags, k := binary.Uvarint(frame[n+m:])
	if k <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad data flags", ErrCorrupt)
	}
	return id, flags, frame[n+m+k:], nil
}

// AppendWindowUpdate appends a complete window-update frame to dst.
// Stream id 0 addresses the session-level window.
func AppendWindowUpdate(dst []byte, id, increment uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(OpWindowUpdate))
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, increment)
	return dst
}

// SplitWindowUpdate decodes a window-update frame.
func SplitWindowUpdate(frame []byte) (id, increment uint64, err error) {
	op, n := binary.Uvarint(frame)
	if n <= 0 || Op(op) != OpWindowUpdate {
		return 0, 0, ErrNotFlow
	}
	id, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("%w: bad window-update stream id", ErrCorrupt)
	}
	increment, k := binary.Uvarint(frame[n+m:])
	if k <= 0 {
		return 0, 0, fmt.Errorf("%w: bad window-update increment", ErrCorrupt)
	}
	if len(frame) != n+m+k {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes after window update", ErrCorrupt, len(frame)-n-m-k)
	}
	return id, increment, nil
}

// AppendFlowPing appends a complete keepalive probe frame to dst. When
// pong is set the frame is the answering OpFlowPong instead.
func AppendFlowPing(dst []byte, token uint64, pong bool) []byte {
	op := OpFlowPing
	if pong {
		op = OpFlowPong
	}
	dst = binary.AppendUvarint(dst, uint64(op))
	dst = binary.AppendUvarint(dst, token)
	return dst
}

// SplitFlowPing decodes a keepalive frame, reporting whether it was the
// answering pong.
func SplitFlowPing(frame []byte) (token uint64, pong bool, err error) {
	op, n := binary.Uvarint(frame)
	if n <= 0 || (Op(op) != OpFlowPing && Op(op) != OpFlowPong) {
		return 0, false, ErrNotFlow
	}
	token, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return 0, false, fmt.Errorf("%w: bad keepalive token", ErrCorrupt)
	}
	if len(frame) != n+m {
		return 0, false, fmt.Errorf("%w: %d trailing bytes after keepalive", ErrCorrupt, len(frame)-n-m)
	}
	return token, Op(op) == OpFlowPong, nil
}
