package wire

import (
	"bytes"
	"testing"
)

func TestPipeMessageRoundTrips(t *testing.T) {
	msgs := []Message{
		&PipeHello{Caps: CapPipeline | CapBatch},
		&PipeCall{Obj: 9, Method: "Lookup", Fingerprint: 0xbeef, Typed: true,
			Args: []byte("args"), Promise: 1, ID: 10, DeadlineMillis: 5000, Barrier: 3},
		&PipeCall{TargetPromise: 1, Method: "Read", Args: []byte{0},
			ArgPromisePos: []uint64{0, 2}, ArgPromiseIDs: []uint64{1, 2}, Promise: 2, ID: 11},
		&PromiseResolve{Promise: 2, Status: StatusOK, Results: []byte("out"), NeedAck: true},
		&PromiseResolve{Promise: 2, Status: StatusPromiseBroken, Err: "dependency of Read failed"},
		&OneWay{Obj: 9, Method: "Log", Typed: true, Fingerprint: 1, Args: []byte("line"), Seq: 4},
	}
	for _, m := range msgs {
		frame := Marshal(nil, m)
		if PeekOp(frame) != m.Op() {
			t.Fatalf("%v: PeekOp = %v", m.Op(), PeekOp(frame))
		}
		got, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("%v: %v", m.Op(), err)
		}
		if !bytes.Equal(Marshal(nil, got), frame) {
			t.Fatalf("%v: unstable round trip", m.Op())
		}
	}
}

func TestPipeCallPromiseArgListBound(t *testing.T) {
	// A frame claiming an absurd promise-argument count must fail cleanly
	// instead of allocating unboundedly.
	m := &PipeCall{Obj: 1, Method: "M", Promise: 2}
	frame := Marshal(nil, m)
	// Re-encode with a forged huge count: encode by hand up to the count.
	e := NewEncoder(nil)
	e.Uint(uint64(OpPipeCall))
	e.Uint(1)            // Obj
	e.Uint(0)            // TargetPromise
	e.String("M")        // Method
	e.Uint(0)            // Fingerprint
	e.Bool(false)        // Typed
	e.BytesField(nil)    // Args
	e.Uint(MaxStringLen) // forged promise-arg count
	forged := e.Bytes()
	if _, err := Unmarshal(forged); err == nil {
		t.Fatal("forged promise-argument count decoded")
	}
	if _, err := Unmarshal(frame); err != nil {
		t.Fatalf("legitimate frame rejected: %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	a := Marshal(nil, &OneWay{Obj: 1, Method: "A", Seq: 1})
	b := Marshal(nil, &PipeCall{Obj: 2, Method: "B", Promise: 1, ID: 5})
	c := Marshal(nil, &Ping{From: 3})

	batch := AppendBatchHeader(nil)
	for _, sub := range [][]byte{a, b, c} {
		batch = AppendBatchFrame(batch, sub)
	}
	if PeekOp(batch) != OpBatch {
		t.Fatalf("PeekOp = %v, want OpBatch", PeekOp(batch))
	}
	subs, err := SplitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 || !bytes.Equal(subs[0], a) || !bytes.Equal(subs[1], b) || !bytes.Equal(subs[2], c) {
		t.Fatalf("split returned %d sub-frames", len(subs))
	}
}

func TestSplitBatchRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty batch":    AppendBatchHeader(nil),
		"not a batch":    Marshal(nil, &Ping{From: 1}),
		"nil":            nil,
		"length overrun": append(AppendBatchHeader(nil), 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, frame := range cases {
		if _, err := SplitBatch(frame); err == nil {
			t.Errorf("%s: SplitBatch accepted", name)
		}
	}
}

// TestBatchTruncationDeterministic cuts a batch at every byte boundary:
// each prefix must split or fail deterministically with no panic — the
// property the session reader relies on when a connection dies mid-batch.
func TestBatchTruncationDeterministic(t *testing.T) {
	batch := AppendBatchHeader(nil)
	batch = AppendBatchFrame(batch, Marshal(nil, &OneWay{Obj: 1, Method: "A", Args: []byte("aaaa"), Seq: 1}))
	batch = AppendBatchFrame(batch, Marshal(nil, &PromiseResolve{Promise: 2, Status: StatusOK, Results: []byte("rrrr")}))
	for cut := 0; cut < len(batch); cut++ {
		prefix := batch[:cut]
		s1, err1 := SplitBatch(prefix)
		s2, err2 := SplitBatch(prefix)
		if (err1 == nil) != (err2 == nil) || len(s1) != len(s2) {
			t.Fatalf("cut at %d: nondeterministic outcome (%v vs %v)", cut, err1, err2)
		}
		_ = PeekOp(prefix)
	}
}

// FuzzSplitBatch asserts the batch splitter never panics and that accepted
// batches re-encode to the same bytes.
func FuzzSplitBatch(f *testing.F) {
	seed := AppendBatchHeader(nil)
	seed = AppendBatchFrame(seed, Marshal(nil, &Ping{From: 1}))
	seed = AppendBatchFrame(seed, Marshal(nil, &OneWay{Obj: 1, Method: "A", Seq: 1}))
	f.Add(seed)
	f.Add(AppendBatchHeader(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		subs, err := SplitBatch(data)
		if err != nil {
			return
		}
		re := AppendBatchHeader(nil)
		for _, sub := range subs {
			re = AppendBatchFrame(re, sub)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("batch re-encode mismatch:\n%x\n%x", re, data)
		}
	})
}

// TestOneWayMarshalAllocs pins the one-way hot path: encoding a one-way
// frame into a reused buffer must not allocate beyond the encoder's
// amortized growth — a fire-and-forget call should cost its payload copy
// and nothing else.
func TestOneWayMarshalAllocs(t *testing.T) {
	m := &OneWay{Obj: 7, Method: "Log", Args: bytes.Repeat([]byte("x"), 256), Seq: 1}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = Marshal(buf[:0], m)
	})
	if allocs > 0 {
		t.Fatalf("OneWay Marshal into reused buffer: %v allocs/op, want 0", allocs)
	}
}

// TestBatchFramingAllocs pins the batching hot path: coalescing frames
// into a reused batch buffer and splitting a batch must stay allocation-
// free except for the splitter's sub-frame slice.
func TestBatchFramingAllocs(t *testing.T) {
	sub := Marshal(nil, &OneWay{Obj: 1, Method: "A", Args: bytes.Repeat([]byte("y"), 128), Seq: 1})
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendBatchHeader(buf[:0])
		buf = AppendBatchFrame(buf, sub)
		buf = AppendBatchFrame(buf, sub)
	})
	if allocs > 0 {
		t.Fatalf("batch append into reused buffer: %v allocs/op, want 0", allocs)
	}
	batch := buf
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := SplitBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation: the [][]byte holding the (aliasing) sub-frames.
	if allocs > 1 {
		t.Fatalf("SplitBatch: %v allocs/op, want <= 1", allocs)
	}
}
