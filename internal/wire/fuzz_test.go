package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal asserts the protocol decoder never panics and that every
// successfully decoded message re-encodes and re-decodes stably.
// Runs its seed corpus under plain `go test`; run with -fuzz for real
// fuzzing.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&Call{Obj: 5, Method: "M", Fingerprint: 1, Typed: true, Args: []byte("abc")},
		&Call{Obj: 5, Method: "M", Args: []byte("abc"), ID: 42, DeadlineMillis: 250},
		&CancelCall{ID: 42},
		&CancelAck{Status: StatusOK},
		&Result{Status: StatusCancelled, Err: "cancelled"},
		&Result{Status: StatusAppError, Err: "e", Results: []byte{1}, NeedAck: true},
		&Dirty{Obj: 2, Client: 3, ClientEndpoints: []string{"tcp:a:1"}, Seq: 4},
		&DirtyAck{Status: StatusOK},
		&Clean{Obj: 1, Client: 2, Seq: 3, Strong: true},
		&CleanAck{},
		&Ping{From: 9},
		&PingAck{From: 9},
		&ResultAck{},
	}
	for _, m := range seeds {
		f.Add(Marshal(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Round-trip stability: decoded messages re-encode canonically.
		re := Marshal(nil, m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2 := Marshal(nil, m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("unstable encoding:\n%x\n%x", re, re2)
		}
	})
}

// FuzzReadFrame asserts the framing layer never panics on arbitrary
// streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			if _, err := ReadFrame(r, nil); err != nil {
				return
			}
		}
	})
}
