package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal asserts the protocol decoder never panics and that every
// successfully decoded message re-encodes and re-decodes stably.
// Runs its seed corpus under plain `go test`; run with -fuzz for real
// fuzzing.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&Call{Obj: 5, Method: "M", Fingerprint: 1, Typed: true, Args: []byte("abc")},
		&Call{Obj: 5, Method: "M", Args: []byte("abc"), ID: 42, DeadlineMillis: 250},
		&CancelCall{ID: 42},
		&CancelAck{Status: StatusOK},
		&Result{Status: StatusCancelled, Err: "cancelled"},
		&Result{Status: StatusAppError, Err: "e", Results: []byte{1}, NeedAck: true},
		&Dirty{Obj: 2, Client: 3, ClientEndpoints: []string{"tcp:a:1"}, Seq: 4, Owner: 11},
		&DirtyAck{Status: StatusOK},
		&Clean{Obj: 1, Client: 2, Seq: 3, Strong: true, Owner: 11},
		&CleanAck{},
		&Ping{From: 9},
		&PingAck{From: 9},
		&ResultAck{},
		&CleanBatch{Client: 3, Objs: []uint64{1, 2, 9}, Seqs: []uint64{4, 5, 6}, Strongs: []bool{false, true, false}, Owner: 11},
		&Lease{Client: 7, ClientEndpoints: []string{"tcp:a:1", "inmem:b"}, Owner: 11},
		&LeaseAck{Status: StatusOK, GrantedMillis: 30000},
		&SessHello{StreamWindow: 256 << 10, SessionWindow: 1 << 20, ChunkSize: 64 << 10},
		&PipeHello{Caps: CapPipeline | CapBatch},
		&PipeCall{Obj: 5, Method: "M", Args: []byte("abc"), Promise: 3, ID: 42, DeadlineMillis: 250, Barrier: 2},
		&PipeCall{TargetPromise: 3, Method: "N", Typed: true, Fingerprint: 7, Args: []byte{1}, Promise: 4, ID: 43},
		&PipeCall{Obj: 1, Method: "P", Args: []byte{0, 0}, ArgPromisePos: []uint64{0, 1}, ArgPromiseIDs: []uint64{3, 4}, Promise: 5, ID: 44},
		&PromiseResolve{Promise: 3, Status: StatusOK, Results: []byte{9}, NeedAck: true},
		&PromiseResolve{Promise: 4, Status: StatusPromiseBroken, Err: "dependency failed"},
		&OneWay{Obj: 5, Method: "Log", Args: []byte("abc"), Seq: 7},
	}
	for _, m := range seeds {
		frame := Marshal(nil, m)
		f.Add(frame)
		// Truncated-mid-message corpora: every decoder must fail cleanly,
		// never panic or over-read, when a frame is cut short.
		for _, cut := range []int{1, len(frame) / 2, len(frame) - 1} {
			if cut > 0 && cut < len(frame) {
				f.Add(frame[:cut])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Round-trip stability: decoded messages re-encode canonically.
		re := Marshal(nil, m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2 := Marshal(nil, m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("unstable encoding:\n%x\n%x", re, re2)
		}
	})
}

// TestUnmarshalTruncationDeterministic exhaustively cuts every valid
// message at every byte boundary: each prefix must either decode to some
// message or return an error — deterministically, with no panic. This is
// the property the chaos transport's connection resets rely on: a frame
// severed mid-wire can never wedge or crash the decoder.
func TestUnmarshalTruncationDeterministic(t *testing.T) {
	msgs := []Message{
		&Call{Obj: 5, Method: "Method", Fingerprint: 0xfeed, Typed: true, Args: []byte("payload"), ID: 77, DeadlineMillis: 100},
		&Result{Status: StatusOK, Results: []byte{1, 2, 3}, NeedAck: true},
		&Dirty{Obj: 2, Client: 3, ClientEndpoints: []string{"tcp:host:1234"}, Seq: 4, Owner: 11},
		&CleanBatch{Client: 3, Objs: []uint64{1, 2}, Seqs: []uint64{4, 5}, Strongs: []bool{true, false}, Owner: 11},
		&Lease{Client: 7, ClientEndpoints: []string{"tcp:a:1"}, Owner: 11},
		&LeaseAck{Status: StatusOK, GrantedMillis: 30000},
		&CancelCall{ID: 42},
		&CancelAck{Status: StatusNoSuchObject},
		&SessHello{StreamWindow: 256 << 10, SessionWindow: 1 << 20, ChunkSize: 64 << 10},
		&PipeHello{Caps: CapPipeline | CapBatch},
		&PipeCall{Obj: 5, Method: "Method", Typed: true, Fingerprint: 0xfeed, Args: []byte("payload"),
			ArgPromisePos: []uint64{1}, ArgPromiseIDs: []uint64{3}, Promise: 9, ID: 77, DeadlineMillis: 100, Barrier: 4},
		&PromiseResolve{Promise: 9, Status: StatusPromiseBroken, Err: "dependency failed", Results: []byte{1, 2}, NeedAck: true},
		&OneWay{Obj: 5, Method: "Log", Args: []byte("payload"), Seq: 12},
	}
	for _, m := range msgs {
		frame := Marshal(nil, m)
		for cut := 0; cut < len(frame); cut++ {
			prefix := frame[:cut]
			m1, err1 := Unmarshal(prefix)
			m2, err2 := Unmarshal(prefix)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%v cut at %d: nondeterministic outcome (%v vs %v)", m.Op(), cut, err1, err2)
			}
			if err1 == nil && !bytes.Equal(Marshal(nil, m1), Marshal(nil, m2)) {
				t.Fatalf("%v cut at %d: nondeterministic decode", m.Op(), cut)
			}
		}
	}
}

// FuzzReadFrame asserts the framing layer never panics on arbitrary
// streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	// A frame header promising more bytes than the stream holds: the
	// reader must report truncation, not block or panic.
	full := buf.Bytes()
	if len(full) > 2 {
		f.Add(full[:len(full)-2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			if _, err := ReadFrame(r, nil); err != nil {
				return
			}
		}
	})
}
