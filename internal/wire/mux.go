package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the multiplexing envelope the session layer uses to
// interleave many logical exchanges on one connection. A muxed frame is
//
//	[OpMux uvarint][stream id uvarint][ordinary marshaled message]
//
// The envelope is self-identifying: a receiver that sees OpMux as the
// first op of a connection switches that connection into session mode, so
// no handshake is needed and legacy checkout-discipline peers keep
// working. Stream ids are never reused within a session (they come from
// the process-wide call-id counter), which is what lets a late response
// to an abandoned exchange be recognized and dropped.

// ErrNotMux reports a frame that does not carry the mux envelope.
var ErrNotMux = errors.New("wire: frame is not mux-wrapped")

// AppendMuxHeader appends the mux envelope header — the OpMux op and the
// stream id — to dst. The ordinary marshaled message follows it.
func AppendMuxHeader(dst []byte, id uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(OpMux))
	dst = binary.AppendUvarint(dst, id)
	return dst
}

// IsMux reports whether frame starts with the mux envelope.
func IsMux(frame []byte) bool {
	op, n := binary.Uvarint(frame)
	return n > 0 && Op(op) == OpMux
}

// SplitMux splits a mux-wrapped frame into its stream id and the inner
// marshaled message. The returned payload aliases frame.
func SplitMux(frame []byte) (id uint64, payload []byte, err error) {
	op, n := binary.Uvarint(frame)
	if n <= 0 || Op(op) != OpMux {
		return 0, nil, ErrNotMux
	}
	id, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return 0, nil, fmt.Errorf("%w: bad mux stream id", ErrCorrupt)
	}
	return id, frame[n+m:], nil
}
