package wire

import (
	"encoding/binary"
	"fmt"
)

// This file defines the promise-pipelining message set and the batch
// framing helpers.
//
// A pipelined call chain rides one mux session: each PipeCall names the
// session-scoped promise id its result should resolve, and may name
// earlier promise ids as its receiver or among its arguments. The owner
// chains dependent calls against its per-session completion table, so a
// K-deep dependent chain costs one round trip instead of K. Results
// travel back as PromiseResolve frames on the call's own stream.
//
// OneWay requests fire-and-forget invocation: no result frame ever comes
// back. One-way calls on a session execute in send order relative to each
// other; a later PipeCall can fence on them through its Barrier field.
//
// OpBatch is pure framing: several complete frames coalesced into one
// transport frame to amortize per-frame syscall and scheduling cost for
// bursts of small calls. Like the flow frames it bypasses the Message
// encode path — append/split helpers that allocate nothing.

// Pipeline capability bits advertised in PipeHello.Caps.
const (
	// CapPipeline: the peer decodes OpPipeCall/OpPromiseResolve/OpOneWay
	// and runs a per-session completion table.
	CapPipeline = 1 << 0
	// CapBatch: the peer splits OpBatch frames.
	CapBatch = 1 << 1
)

// PipeHello advertises a session endpoint's promise-pipelining and
// batching capability. It travels wrapped in the mux envelope on reserved
// stream id 0, immediately after SessHello; legacy peers ignore it as an
// unknown future control message.
type PipeHello struct {
	// Caps is the bitwise OR of the Cap* constants.
	Caps uint64
}

// Op returns OpPipeHello.
func (*PipeHello) Op() Op { return OpPipeHello }

func (m *PipeHello) encode(e *Encoder) { e.Uint(m.Caps) }
func (m *PipeHello) decode(d *Decoder) { m.Caps = d.Uint() }

// PipeCall requests invocation of a method whose receiver or arguments
// may be unresolved promises from earlier pipelined calls on the same
// session. It is shaped like a Call plus the promise plumbing.
type PipeCall struct {
	// Obj is the target's index in the receiving space's export table,
	// meaningful only when TargetPromise is zero.
	Obj uint64
	// TargetPromise, when nonzero, names the promise whose resolved value
	// is the call's receiver: the owner waits for that promise's local
	// completion and invokes the method on its first result.
	TargetPromise uint64
	// Method is the method name on the target object.
	Method string
	// Fingerprint is the caller's stub fingerprint; zero means unchecked.
	Fingerprint uint64
	// Typed reports how Args is encoded (see Call.Typed).
	Typed bool
	// Args is the pickled argument tuple. Argument positions listed in
	// ArgPromisePos are pickled as nil placeholders; the owner substitutes
	// the promises' resolved values before invoking.
	Args []byte
	// ArgPromisePos and ArgPromiseIDs are parallel: the argument at
	// position ArgPromisePos[i] (0-based, excluding any leading context)
	// is the resolved value of promise ArgPromiseIDs[i].
	ArgPromisePos []uint64
	ArgPromiseIDs []uint64
	// Promise is the session-scoped promise id this call resolves. The
	// client allocates it; the owner records the call's outcome under it
	// in the session's completion table.
	Promise uint64
	// ID correlates this call with a CancelCall and trace events.
	ID uint64
	// DeadlineMillis is the caller's remaining time budget (see
	// Call.DeadlineMillis).
	DeadlineMillis uint64
	// Barrier is the number of one-way calls sent on this session before
	// this call; the owner delays invocation until that many one-ways
	// have finished executing, giving one-way → two-way ordering.
	Barrier uint64
}

// Op returns OpPipeCall.
func (*PipeCall) Op() Op { return OpPipeCall }

func (m *PipeCall) encode(e *Encoder) {
	e.Uint(m.Obj)
	e.Uint(m.TargetPromise)
	e.String(m.Method)
	e.Uint(m.Fingerprint)
	e.Bool(m.Typed)
	e.BytesField(m.Args)
	e.Uint(uint64(len(m.ArgPromisePos)))
	for i := range m.ArgPromisePos {
		e.Uint(m.ArgPromisePos[i])
		e.Uint(m.ArgPromiseIDs[i])
	}
	e.Uint(m.Promise)
	e.Uint(m.ID)
	e.Uint(m.DeadlineMillis)
	e.Uint(m.Barrier)
}

func (m *PipeCall) decode(d *Decoder) {
	m.Obj = d.Uint()
	m.TargetPromise = d.Uint()
	m.Method = d.InternedString()
	m.Fingerprint = d.Uint()
	m.Typed = d.Bool()
	m.Args = d.BytesField()
	n := d.Uint()
	if n > MaxStringLen/2 {
		d.fail("pipe call promise-argument list too large")
		return
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		m.ArgPromisePos = append(m.ArgPromisePos, d.Uint())
		m.ArgPromiseIDs = append(m.ArgPromiseIDs, d.Uint())
	}
	m.Promise = d.Uint()
	m.ID = d.Uint()
	m.DeadlineMillis = d.Uint()
	m.Barrier = d.Uint()
}

// PromiseResolve carries the outcome of a pipelined call, resolving the
// promise id the client assigned. Shaped like a Result plus the id.
type PromiseResolve struct {
	// Promise is the session-scoped promise id being resolved.
	Promise uint64
	// Status classifies the outcome; StatusPromiseBroken means the call
	// never ran because a dependency failed.
	Status Status
	// Err is the error text when Status != StatusOK.
	Err string
	// Results is the pickled result tuple (see Result.Results).
	Results []byte
	// NeedAck is set when Results carries network references; the client
	// answers with a ResultAck on the same stream (see Result.NeedAck).
	NeedAck bool
}

// Op returns OpPromiseResolve.
func (*PromiseResolve) Op() Op { return OpPromiseResolve }

func (m *PromiseResolve) encode(e *Encoder) {
	e.Uint(m.Promise)
	e.Uint(uint64(m.Status))
	e.String(m.Err)
	e.BytesField(m.Results)
	e.Bool(m.NeedAck)
}

func (m *PromiseResolve) decode(d *Decoder) {
	m.Promise = d.Uint()
	m.Status = Status(d.Uint())
	m.Err = d.String()
	m.Results = d.BytesField()
	m.NeedAck = d.Bool()
}

// OneWay requests invocation with no reply: no result, no error report,
// no acknowledgement. The receiver executes one-way calls from a session
// in Seq order relative to each other.
type OneWay struct {
	// Obj is the target's index in the receiving space's export table.
	Obj uint64
	// Method is the method name on the exported object.
	Method string
	// Fingerprint is the caller's stub fingerprint; zero means unchecked.
	Fingerprint uint64
	// Typed reports how Args is encoded (see Call.Typed).
	Typed bool
	// Args is the pickled argument tuple.
	Args []byte
	// Seq numbers this session's one-way calls from 1 upward, fixing
	// their execution order and giving PipeCall.Barrier its meaning.
	Seq uint64
}

// Op returns OpOneWay.
func (*OneWay) Op() Op { return OpOneWay }

func (m *OneWay) encode(e *Encoder) {
	e.Uint(m.Obj)
	e.String(m.Method)
	e.Uint(m.Fingerprint)
	e.Bool(m.Typed)
	e.BytesField(m.Args)
	e.Uint(m.Seq)
}

func (m *OneWay) decode(d *Decoder) {
	m.Obj = d.Uint()
	m.Method = d.InternedString()
	m.Fingerprint = d.Uint()
	m.Typed = d.Bool()
	m.Args = d.BytesField()
	m.Seq = d.Uint()
}

// AppendBatchHeader appends the batch-frame op to dst. Sub-frames follow,
// each appended by AppendBatchFrame.
func AppendBatchHeader(dst []byte) []byte {
	return binary.AppendUvarint(dst, uint64(OpBatch))
}

// AppendBatchFrame appends one length-prefixed sub-frame to a batch under
// construction.
func AppendBatchFrame(dst, frame []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(frame)))
	return append(dst, frame...)
}

// SplitBatch splits a batch frame into its sub-frames. The returned
// slices alias frame. A batch must hold at least one sub-frame and no
// trailing garbage.
func SplitBatch(frame []byte) ([][]byte, error) {
	op, n := binary.Uvarint(frame)
	if n <= 0 || Op(op) != OpBatch {
		return nil, fmt.Errorf("%w: not a batch frame", ErrCorrupt)
	}
	// Count sub-frames first so the result slice is allocated exactly
	// once — batching is a hot path and the splitter is pinned to a
	// single allocation by test.
	count := 0
	for rest := frame[n:]; len(rest) > 0; {
		l, m := binary.Uvarint(rest)
		if m <= 0 || l > uint64(len(rest)-m) {
			return nil, fmt.Errorf("%w: bad batch sub-frame length", ErrCorrupt)
		}
		rest = rest[m+int(l):]
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrCorrupt)
	}
	subs := make([][]byte, 0, count)
	for rest := frame[n:]; len(rest) > 0; {
		l, m := binary.Uvarint(rest)
		subs = append(subs, rest[m:m+int(l)])
		rest = rest[m+int(l):]
	}
	return subs, nil
}
