package objtable

import "testing"

func TestSweepWithdrawsIdleEntries(t *testing.T) {
	e := NewExports()
	ix1, _ := e.Export(&thing{n: 1}, nil)
	ix2, _ := e.Export(&thing{n: 2}, nil)
	e.Pin(ix2)
	agent := &thing{n: 3}
	_ = e.ExportAt(agent, 1, nil)
	got := e.Sweep()
	if len(got) != 1 || got[0] != ix1 {
		t.Fatalf("swept %v, want [%d]", got, ix1)
	}
	if e.Len() != 2 {
		t.Fatalf("len=%d", e.Len())
	}
	e.Unpin(ix2)
	if e.Len() != 1 {
		t.Fatalf("len=%d after unpin", e.Len())
	}
}
