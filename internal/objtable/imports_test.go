package objtable

import (
	"errors"
	"sync"
	"testing"
	"time"

	"netobjects/internal/wire"
)

var testKey = wire.Key{Owner: 42, Index: 7}

type surrogate struct{ label string }

// register walks a fresh key through Acquire/FinishRegister to StateOK.
func register(t *testing.T, im *Imports, key wire.Key) *surrogate {
	t.Helper()
	_, act, seq := im.Acquire(key, []string{"inmem:o"})
	if act != ActionRegister {
		t.Fatalf("acquire: action %v, want register", act)
	}
	if seq == 0 {
		t.Fatal("register with zero seq")
	}
	s := &surrogate{label: "s"}
	im.FinishRegister(key, s, nil)
	if got := im.StateOf(key); got != StateOK {
		t.Fatalf("state %v after register", got)
	}
	return s
}

func TestImportLifecycleHappyPath(t *testing.T) {
	im := NewImports()
	s := register(t, im, testKey)

	got, err := im.Use(testKey)
	if err != nil || got != s {
		t.Fatalf("Use: %v %v", got, err)
	}

	if !im.Release(testKey) {
		t.Fatal("release did not request a clean")
	}
	if got := im.StateOf(testKey); got != StateOKQueued {
		t.Fatalf("state %v after release", got)
	}
	seq, eps, ok := im.BeginClean(testKey)
	if !ok || seq == 0 || len(eps) == 0 {
		t.Fatalf("BeginClean: %v %v %v", seq, eps, ok)
	}
	if got := im.StateOf(testKey); got != StateCcit {
		t.Fatalf("state %v after BeginClean", got)
	}
	redo, _ := im.FinishClean(testKey, nil)
	if redo {
		t.Fatal("unexpected redo")
	}
	if got := im.StateOf(testKey); got != StateNone {
		t.Fatalf("state %v after clean ack, want ⊥", got)
	}
}

func TestSecondAcquireReturnsSameSurrogate(t *testing.T) {
	im := NewImports()
	s := register(t, im, testKey)
	ent, act, _ := im.Acquire(testKey, nil)
	if act != ActionUse {
		t.Fatalf("action %v", act)
	}
	got, err := im.Wait(ent)
	if err != nil || got != s {
		t.Fatalf("wait: %v %v", got, err)
	}
}

func TestResurrectionFromOKQueued(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	im.Release(testKey)
	// A new copy arrives before the cleaner ran: receive_copy cancels the
	// scheduled clean (Note 4 of the formalisation).
	_, act, _ := im.Acquire(testKey, nil)
	if act != ActionUse {
		t.Fatalf("action %v, want use", act)
	}
	if got := im.StateOf(testKey); got != StateOK {
		t.Fatalf("state %v", got)
	}
	// The cleaner now dequeues the stale request and must skip it.
	if _, _, ok := im.BeginClean(testKey); ok {
		t.Fatal("cleaner acted on a resurrected reference")
	}
}

func TestCcitNilRequiresCleanAckThenRedo(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	im.Release(testKey)
	if _, _, ok := im.BeginClean(testKey); !ok {
		t.Fatal("BeginClean refused")
	}
	// Copy arrives while the clean call is in transit.
	ent, act, _ := im.Acquire(testKey, nil)
	if act != ActionWait {
		t.Fatalf("action %v, want wait", act)
	}
	if got := im.StateOf(testKey); got != StateCcitNil {
		t.Fatalf("state %v, want ccitnil", got)
	}

	waited := make(chan error, 1)
	go func() {
		_, err := im.Wait(ent)
		waited <- err
	}()

	// Clean ack arrives: the entry must re-enter StateNil and demand a
	// fresh dirty call, never jumping straight to OK (there is no
	// ccitnil -> OK edge in the cube).
	redo, seq := im.FinishClean(testKey, nil)
	if !redo {
		t.Fatal("no redo after clean ack in ccitnil")
	}
	if got := im.StateOf(testKey); got != StateNil {
		t.Fatalf("state %v, want nil", got)
	}
	select {
	case err := <-waited:
		t.Fatalf("waiter released before re-registration: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if seq == 0 {
		t.Fatal("redo without seq")
	}
	s2 := &surrogate{label: "s2"}
	im.FinishRegister(testKey, s2, nil)
	if err := <-waited; err != nil {
		t.Fatal(err)
	}
	got, err := im.Use(testKey)
	if err != nil || got != s2 {
		t.Fatalf("after redo: %v %v", got, err)
	}
}

func TestFailedRegistrationWakesWaitersWithError(t *testing.T) {
	im := NewImports()
	ent, act, _ := im.Acquire(testKey, nil)
	if act != ActionRegister {
		t.Fatal("want register")
	}
	// A second unmarshal of the same wireRep blocks.
	ent2, act2, _ := im.Acquire(testKey, nil)
	if act2 != ActionWait || ent2 != ent {
		t.Fatalf("second acquire: %v", act2)
	}
	waited := make(chan error, 1)
	go func() {
		_, err := im.Wait(ent2)
		waited <- err
	}()
	im.FinishRegister(testKey, nil, errors.New("owner unreachable"))
	if err := <-waited; !errors.Is(err, ErrRegistration) {
		t.Fatalf("waiter got %v", err)
	}
	if got := im.StateOf(testKey); got != StateNone {
		t.Fatalf("state %v after failed registration", got)
	}
	// The next import starts a fresh lifecycle with a higher seq.
	_, act3, seq3 := im.Acquire(testKey, nil)
	if act3 != ActionRegister || seq3 < 2 {
		t.Fatalf("fresh lifecycle: %v seq=%d", act3, seq3)
	}
}

func TestSeqMonotonicAcrossLifecycles(t *testing.T) {
	im := NewImports()
	var seqs []uint64
	for i := 0; i < 3; i++ {
		_, act, seq := im.Acquire(testKey, nil)
		if act != ActionRegister {
			t.Fatalf("round %d: action %v", i, act)
		}
		seqs = append(seqs, seq)
		im.FinishRegister(testKey, &surrogate{}, nil)
		im.Release(testKey)
		cseq, _, ok := im.BeginClean(testKey)
		if !ok {
			t.Fatalf("round %d: BeginClean refused", i)
		}
		seqs = append(seqs, cseq)
		im.FinishClean(testKey, nil)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence numbers not increasing: %v", seqs)
		}
	}
}

func TestPinDefersRelease(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	if err := im.Pin(testKey); err != nil {
		t.Fatal(err)
	}
	if im.Release(testKey) {
		t.Fatal("release acted while pinned")
	}
	if got := im.StateOf(testKey); got != StateOK {
		t.Fatalf("state %v, want OK while pinned", got)
	}
	if !im.Unpin(testKey) {
		t.Fatal("unpin did not surface the deferred release")
	}
	if got := im.StateOf(testKey); got != StateOKQueued {
		t.Fatalf("state %v after deferred release", got)
	}
}

func TestNestedPins(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	im.Pin(testKey)
	im.Pin(testKey)
	im.Release(testKey)
	if im.Unpin(testKey) {
		t.Fatal("release surfaced with a pin outstanding")
	}
	if !im.Unpin(testKey) {
		t.Fatal("final unpin lost the deferred release")
	}
}

func TestUseAfterRelease(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	im.Release(testKey)
	if _, err := im.Use(testKey); !errors.Is(err, ErrReleased) {
		t.Fatalf("got %v", err)
	}
}

func TestReleaseIdempotentAndEarly(t *testing.T) {
	im := NewImports()
	if im.Release(testKey) {
		t.Fatal("release of unknown key requested a clean")
	}
	register(t, im, testKey)
	if !im.Release(testKey) {
		t.Fatal("first release ignored")
	}
	if im.Release(testKey) {
		t.Fatal("second release requested another clean")
	}
}

func TestConcurrentAcquireSingleRegistration(t *testing.T) {
	im := NewImports()
	const goroutines = 16
	var wg sync.WaitGroup
	registrations := make(chan uint64, goroutines)
	surrogates := make(chan any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, act, seq := im.Acquire(testKey, nil)
			if act == ActionRegister {
				registrations <- seq
				time.Sleep(5 * time.Millisecond) // simulate dirty RPC
				im.FinishRegister(testKey, &surrogate{}, nil)
			}
			s, err := im.Wait(ent)
			if err != nil {
				t.Error(err)
				return
			}
			surrogates <- s
		}()
	}
	wg.Wait()
	close(registrations)
	close(surrogates)
	if n := len(registrations); n != 1 {
		t.Fatalf("%d registrations, want exactly 1", n)
	}
	var first any
	for s := range surrogates {
		if first == nil {
			first = s
		}
		if s != first {
			t.Fatal("waiters saw different surrogates")
		}
	}
}

// TestGenerationSurvivesRelifecycle: generations must keep increasing
// across successive lifecycles of the same key, like sequence numbers do.
// Before the fix a re-imported entry restarted at generation 1, so a
// finalizer cleanup armed in the previous lifecycle (and firing late,
// after the release/clean/re-import cycle completed) matched the fresh
// entry and released it out from under live users — ReleaseGen's match
// deliberately overrides holds, because for a genuinely matching
// generation the surrogate is unreachable.
func TestGenerationSurvivesRelifecycle(t *testing.T) {
	im := NewImports()

	// Lifecycle 1: register, release, clean to completion.
	gen1 := registerGen(t, im, testKey)
	if !im.Release(testKey) {
		t.Fatal("release did not queue a clean")
	}
	if _, _, ok := im.BeginClean(testKey); !ok {
		t.Fatal("clean not begun")
	}
	if redo, _ := im.FinishClean(testKey, nil); redo {
		t.Fatal("unexpected redo")
	}
	if got := im.StateOf(testKey); got != StateNone {
		t.Fatalf("entry survived clean: %v", got)
	}

	// Lifecycle 2 of the same key.
	gen2 := registerGen(t, im, testKey)
	if gen2 <= gen1 {
		t.Fatalf("generation reused across lifecycles: %d then %d", gen1, gen2)
	}

	// The stale cleanup from lifecycle 1 fires now: it must not touch the
	// fresh entry.
	if im.ReleaseGen(testKey, gen1) {
		t.Fatal("stale cleanup released the re-imported entry")
	}
	if _, err := im.Use(testKey); err != nil {
		t.Fatalf("fresh entry unusable after stale cleanup: %v", err)
	}
	// The current incarnation's cleanup still works.
	if !im.ReleaseGen(testKey, gen2) {
		t.Fatal("live generation refused to release")
	}
}
