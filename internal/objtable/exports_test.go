package objtable

import (
	"errors"
	"sync"
	"testing"

	"netobjects/internal/wire"
)

type thing struct{ n int }

func TestExportIdempotent(t *testing.T) {
	e := NewExports()
	obj := &thing{n: 1}
	ix1, err := e.Export(obj, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := e.Export(obj, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if ix1 != ix2 {
		t.Fatalf("same object exported at %d and %d", ix1, ix2)
	}
	if ix1 < wire.FirstUserIndex {
		t.Fatalf("user export landed on reserved index %d", ix1)
	}
	other, _ := e.Export(&thing{n: 2}, []uint64{7})
	if other == ix1 {
		t.Fatal("distinct objects share an index")
	}
}

func TestExportRejectsValues(t *testing.T) {
	e := NewExports()
	if _, err := e.Export(thing{n: 1}, nil); !errors.Is(err, ErrNotExportable) {
		t.Fatalf("struct value: got %v", err)
	}
	if _, err := e.Export(nil, nil); !errors.Is(err, ErrNotExportable) {
		t.Fatalf("nil: got %v", err)
	}
	if _, err := e.Export(42, nil); !errors.Is(err, ErrNotExportable) {
		t.Fatalf("int: got %v", err)
	}
}

func TestExportAtWellKnown(t *testing.T) {
	e := NewExports()
	agent := &thing{}
	if err := e.ExportAt(agent, wire.AgentIndex, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.ExportAt(&thing{}, wire.AgentIndex, []uint64{1}); !errors.Is(err, ErrIndexInUse) {
		t.Fatalf("got %v", err)
	}
	ent, ok := e.Lookup(wire.AgentIndex)
	if !ok || !ent.Pinned {
		t.Fatal("agent entry missing or not pinned")
	}
	// Pinned entries survive dirty/clean cycles.
	if err := e.Dirty(wire.AgentIndex, 9, 1, nil); err != nil {
		t.Fatal(err)
	}
	e.Clean(wire.AgentIndex, 9, 2, false)
	if _, ok := e.Lookup(wire.AgentIndex); !ok {
		t.Fatal("pinned entry was withdrawn")
	}
}

func TestDirtyCleanLifecycle(t *testing.T) {
	e := NewExports()
	var withdrawn []uint64
	e.OnWithdraw = func(ix uint64, _ any) { withdrawn = append(withdrawn, ix) }
	ix, err := e.Export(&thing{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const client = wire.SpaceID(77)
	if err := e.Dirty(ix, client, 1, []string{"inmem:c"}); err != nil {
		t.Fatal(err)
	}
	if !e.HoldsDirty(ix, client) {
		t.Fatal("client not in dirty set after dirty call")
	}
	e.Clean(ix, client, 2, false)
	if e.HoldsDirty(ix, client) {
		t.Fatal("client still in dirty set after clean")
	}
	if _, ok := e.Lookup(ix); ok {
		t.Fatal("entry not withdrawn after last clean")
	}
	if len(withdrawn) != 1 || withdrawn[0] != ix {
		t.Fatalf("OnWithdraw: %v", withdrawn)
	}
}

func TestSequenceNumberOrdering(t *testing.T) {
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	const client = wire.SpaceID(5)

	// Clean seq 2 processed before dirty seq 1 (out-of-order channels):
	// the late dirty must be ignored — this is the race the sequence
	// numbers exist to prevent.
	if err := e.Dirty(ix, client, 3, nil); err != nil {
		t.Fatal(err)
	}
	e.Clean(ix, client, 4, false)
	entGone := !e.HoldsDirty(ix, client)
	if !entGone {
		t.Fatal("clean ignored")
	}
	// Late dirty with stale seq: no effect even though entry (if any)
	// exists. The object may already be withdrawn, which reports
	// ErrNoSuchObject — also a correct, safe outcome.
	err := e.Dirty(ix, client, 3, nil)
	if err == nil && e.HoldsDirty(ix, client) {
		t.Fatal("stale dirty resurrected the client")
	}
}

func TestStaleCleanIgnored(t *testing.T) {
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	const client = wire.SpaceID(5)
	if err := e.Dirty(ix, client, 5, nil); err != nil {
		t.Fatal(err)
	}
	e.Clean(ix, client, 4, false) // stale: must not remove
	if !e.HoldsDirty(ix, client) {
		t.Fatal("stale clean removed a live dirty entry")
	}
}

func TestStrongCleanTombstone(t *testing.T) {
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	e.Pin(ix) // keep the object alive through the scenario
	const client = wire.SpaceID(8)

	// The client's dirty call failed with unknown outcome; it issues a
	// strong clean with a later seq. The clean arrives first.
	e.Clean(ix, client, 2, true)
	// The lost dirty call now limps in with the earlier seq: it must be
	// ignored thanks to the tombstone.
	if err := e.Dirty(ix, client, 1, nil); err != nil {
		t.Fatal(err)
	}
	if e.HoldsDirty(ix, client) {
		t.Fatal("cancelled dirty call took effect after strong clean")
	}
}

func TestStaleStrongCleanIgnored(t *testing.T) {
	// A strong clean overtaken by a newer dirty (a fresh registration
	// after the failed one it was cancelling) must be ignored: the
	// sequence rule applies to strong cleans too.
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	const client = wire.SpaceID(4)
	// seq 1: dirty lost in the network; seq 2: strong clean queued;
	// seq 3: fresh registration arrives first.
	if err := e.Dirty(ix, client, 3, nil); err != nil {
		t.Fatal(err)
	}
	e.Clean(ix, client, 2, true) // the delayed strong clean limps in
	if !e.HoldsDirty(ix, client) {
		t.Fatal("stale strong clean cleared a newer registration")
	}
	if _, ok := e.Lookup(ix); !ok {
		t.Fatal("object withdrawn by stale strong clean")
	}
}

func TestPinPreventsWithdraw(t *testing.T) {
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	const client = wire.SpaceID(3)
	if err := e.Pin(ix); err != nil {
		t.Fatal(err)
	}
	if err := e.Dirty(ix, client, 1, nil); err != nil {
		t.Fatal(err)
	}
	e.Clean(ix, client, 2, false)
	if _, ok := e.Lookup(ix); !ok {
		t.Fatal("pinned (in transit) entry was withdrawn on empty dirty set")
	}
	e.Unpin(ix)
	if _, ok := e.Lookup(ix); ok {
		t.Fatal("entry survived unpin with empty dirty set")
	}
}

func TestDropClient(t *testing.T) {
	e := NewExports()
	ix1, _ := e.Export(&thing{n: 1}, nil)
	ix2, _ := e.Export(&thing{n: 2}, nil)
	const dead = wire.SpaceID(1)
	const alive = wire.SpaceID(2)
	e.Dirty(ix1, dead, 1, nil)
	e.Dirty(ix2, dead, 1, nil)
	e.Dirty(ix2, alive, 1, nil)
	withdrawn := e.DropClient(dead)
	if len(withdrawn) != 1 || withdrawn[0] != ix1 {
		t.Fatalf("withdrawn %v, want [%d]", withdrawn, ix1)
	}
	if !e.HoldsDirty(ix2, alive) {
		t.Fatal("unrelated client lost its dirty entry")
	}
}

func TestClientsSnapshot(t *testing.T) {
	e := NewExports()
	ix, _ := e.Export(&thing{}, nil)
	e.Dirty(ix, 10, 1, []string{"inmem:a"})
	e.Dirty(ix, 20, 1, []string{"inmem:b"})
	e.Clean(ix, 20, 2, false)
	cs := e.Clients()
	if len(cs) != 1 {
		t.Fatalf("clients: %v", cs)
	}
	if eps := cs[10]; len(eps) != 1 || eps[0] != "inmem:a" {
		t.Fatalf("endpoints: %v", eps)
	}
}

func TestDirtyUnknownIndex(t *testing.T) {
	e := NewExports()
	if err := e.Dirty(99, 1, 1, nil); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("got %v", err)
	}
	// Cleans for unknown objects are silent no-ops.
	e.Clean(99, 1, 1, false)
}

func TestConcurrentExportAndDirty(t *testing.T) {
	e := NewExports()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix, err := e.Export(&thing{n: g*1000 + i}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				client := wire.SpaceID(g + 1)
				if err := e.Dirty(ix, client, 1, nil); err != nil {
					t.Error(err)
					return
				}
				e.Clean(ix, client, 2, false)
			}
		}(g)
	}
	wg.Wait()
	if e.Len() != 0 {
		t.Fatalf("leaked %d entries", e.Len())
	}
}
