package objtable

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"netobjects/internal/wire"
)

// These tests exercise the striped tables across shard boundaries and
// under concurrent mutation; run them with -race (the CI race-short lane
// does). Shard counts of 1 and the default bracket the configuration
// space: one stripe serializes everything, the default spreads the same
// operations across every stripe.

func TestShardCountNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards},
		{-4, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{5, 8},
		{128, 128},
	}
	for _, c := range cases {
		if got := NewExportsSharded(c.in).ShardCount(); got != c.want {
			t.Errorf("exports shards(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := NewImportsSharded(c.in).ShardCount(); got != c.want {
			t.Errorf("imports shards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestExportIndexShardCongruence pins the allocation invariant striping
// relies on: every index a shard hands out routes back to that shard, so
// an entry is always created and found under the same lock.
func TestExportIndexShardCongruence(t *testing.T) {
	for _, shards := range []int{1, 4, DefaultShards} {
		e := NewExportsSharded(shards)
		for i := 0; i < 4*shards; i++ {
			obj := &thing{n: i}
			ix, err := e.Export(obj, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ix < wire.FirstUserIndex {
				t.Fatalf("shards=%d: user export landed on reserved index %d", shards, ix)
			}
			if ent, ok := e.Lookup(ix); !ok || ent.Obj != obj {
				t.Fatalf("shards=%d: exported object not found at its own index %d", shards, ix)
			}
			if back, ok := e.IndexOf(obj); !ok || back != ix {
				t.Fatalf("shards=%d: IndexOf = (%d,%v), want (%d,true)", shards, back, ok, ix)
			}
		}
	}
}

// TestExportsConcurrentGrowLookupRemove races growth (Export+Dirty),
// reads (Lookup, HoldsDirty, Len), removal (Clean with withdrawal), and
// whole-table walks (Sweep, Clients) against each other on both a
// single-stripe and a default-striped table. The -race run is the real
// assertion; the final drain checks no entry is stranded or doubly
// withdrawn.
func TestExportsConcurrentGrowLookupRemove(t *testing.T) {
	for _, shards := range []int{1, DefaultShards} {
		e := NewExportsSharded(shards)
		var withdrawn atomic.Int64
		e.OnWithdraw = func(uint64, any) { withdrawn.Add(1) }

		const (
			writers = 8
			perG    = 200
		)
		idxCh := make(chan uint64, writers*perG)

		// Growers: export fresh objects and register a dirty client. The
		// runtime pins an export while the reference is in transit; this
		// test doesn't, so a concurrent Sweep may legitimately withdraw an
		// entry between Export and its first Dirty — re-export and retry,
		// counting the extra withdrawals for the final accounting.
		var grow sync.WaitGroup
		var swept atomic.Int64
		for g := 0; g < writers; g++ {
			grow.Add(1)
			go func(g int) {
				defer grow.Done()
				client := wire.SpaceID(g + 1)
				for i := 0; i < perG; i++ {
					obj := &thing{n: g*perG + i}
					var ix uint64
					for {
						var err error
						if ix, err = e.Export(obj, nil); err != nil {
							t.Error(err)
							return
						}
						err = e.Dirty(ix, client, 1, nil)
						if err == nil {
							break
						}
						if !errors.Is(err, ErrNoSuchObject) {
							t.Error(err)
							return
						}
						swept.Add(1)
					}
					idxCh <- ix
				}
			}(g)
		}

		// Removers: clean what the growers publish, withdrawing entries
		// while growth continues on the same shards. A clean from every
		// possible client id guarantees the entry's one dirty member goes.
		var remove sync.WaitGroup
		var removedTotal atomic.Int64
		for r := 0; r < 2; r++ {
			remove.Add(1)
			go func() {
				defer remove.Done()
				for ix := range idxCh {
					for c := wire.SpaceID(1); c <= writers; c++ {
						e.Clean(ix, c, 2, false)
					}
					removedTotal.Add(1)
				}
			}()
		}

		// Readers: lookups, membership probes and cross-shard walks.
		stop := make(chan struct{})
		var read sync.WaitGroup
		for rd := 0; rd < 2; rd++ {
			read.Add(1)
			go func() {
				defer read.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					e.Len()
					e.Sweep()
					e.Clients()
					e.Lookup(wire.FirstUserIndex)
					e.HoldsDirty(wire.FirstUserIndex, 1)
				}
			}()
		}

		grow.Wait()
		close(idxCh)
		remove.Wait()
		close(stop)
		read.Wait()

		if n := removedTotal.Load(); n != writers*perG {
			t.Fatalf("shards=%d: removers drained %d indices, want %d", shards, n, writers*perG)
		}
		e.Sweep()
		if n := e.Len(); n != 0 {
			t.Fatalf("shards=%d: %d entries stranded after drain:\n%s", shards, n, e.DebugDump())
		}
		if w, s := withdrawn.Load(), swept.Load(); w != int64(writers*perG)+s {
			t.Fatalf("shards=%d: OnWithdraw fired %d times, want %d (+%d swept pre-dirty)", shards, w, writers*perG, s)
		}
	}
}

// TestSweepCrossShard scatters idle and held entries across every stripe
// and checks one Sweep withdraws exactly the idle ones, whichever shard
// they landed on, reporting each index exactly once.
func TestSweepCrossShard(t *testing.T) {
	e := NewExports() // default stripe count
	const n = 4 * DefaultShards
	held := map[uint64]bool{}
	idle := map[uint64]bool{}
	for i := 0; i < n; i++ {
		ix, err := e.Export(&thing{n: i}, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // dirty set member
			if err := e.Dirty(ix, wire.SpaceID(7), 1, nil); err != nil {
				t.Fatal(err)
			}
			held[ix] = true
		case 1: // reference in transit
			if err := e.Pin(ix); err != nil {
				t.Fatal(err)
			}
			held[ix] = true
		default: // exported, never imported: Sweep's target
			idle[ix] = true
		}
	}
	swept := e.Sweep()
	seen := map[uint64]bool{}
	for _, ix := range swept {
		if seen[ix] {
			t.Fatalf("index %d swept twice", ix)
		}
		seen[ix] = true
		if !idle[ix] {
			t.Fatalf("held index %d was swept", ix)
		}
	}
	if len(swept) != len(idle) {
		t.Fatalf("swept %d entries, want %d", len(swept), len(idle))
	}
	if got, want := e.Len(), len(held); got != want {
		t.Fatalf("len=%d after sweep, want %d", got, want)
	}
	for ix := range held {
		if _, ok := e.Lookup(ix); !ok {
			t.Fatalf("held index %d missing after sweep", ix)
		}
	}
}

// TestImportsConcurrentAcquireReleaseAcrossShards races the surrogate
// life cycle (Acquire/FinishRegister/Use/Pin/Unpin/Release) over a key
// space that spans every stripe, with whole-table walks mixed in.
func TestImportsConcurrentAcquireReleaseAcrossShards(t *testing.T) {
	for _, shards := range []int{1, DefaultShards} {
		im := NewImportsSharded(shards)
		const (
			workers = 8
			keys    = 64
			rounds  = 50
		)
		stop := make(chan struct{})
		var walk sync.WaitGroup
		walk.Add(1)
		go func() {
			defer walk.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				im.Len()
				im.Keys()
				im.OwnersSnapshot()
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					key := wire.Key{Owner: wire.SpaceID(w%4 + 1), Index: uint64(wire.FirstUserIndex) + uint64((w*rounds+r)%keys)}
					ent, act, _ := im.Acquire(key, []string{"inmem:o"})
					switch act {
					case ActionRegister:
						im.FinishRegister(key, &surrogate{label: "s"}, nil)
					case ActionWait:
						_, _ = im.Wait(ent)
					}
					if _, err := im.Use(key); err != nil {
						continue // raced with a concurrent release
					}
					if err := im.Pin(key); err == nil {
						im.Unpin(key)
					}
					im.Release(key)
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		walk.Wait()
		// Releases can outnumber acquisitions only through the ReleaseGen
		// guard; whatever survives must still be walkable and consistent.
		if n, k := im.Len(), len(im.Keys()); n != k {
			t.Fatalf("shards=%d: Len=%d but %d keys", shards, n, k)
		}
	}
}
