package objtable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"netobjects/internal/obs"
	"netobjects/internal/wire"
)

// State is a remote reference's position in the life cycle of Birrell's
// algorithm, as refined by the formalisation. The absent-from-table state
// (⊥, "pre-existence") is represented by the entry not existing.
type State int

// Reference life-cycle states.
const (
	// StateNone is ⊥: the reference does not exist in this space. Entries
	// never carry this state; it is returned by StateOf for absent keys.
	StateNone State = iota
	// StateNil: the reference has been received but the dirty call that
	// registers it with the owner has not completed; unmarshaling blocks.
	StateNil
	// StateOK: registered and usable.
	StateOK
	// StateOKQueued: usable but locally released — a clean call has been
	// scheduled (clean_call_todo) and not yet sent, so a newly received
	// copy can still resurrect the reference without any messages.
	StateOKQueued
	// StateCcit: "clean call in transit" — the clean call has been sent
	// and its acknowledgement is pending; the reference is unusable.
	StateCcit
	// StateCcitNil: a clean call is in transit but a new copy of the
	// reference arrived; after the clean ack a fresh dirty call is made.
	// This is the state Birrell's description lacked.
	StateCcitNil
)

// String names the state, matching the paper's vocabulary.
func (s State) String() string {
	switch s {
	case StateNone:
		return "⊥"
	case StateNil:
		return "nil"
	case StateOK:
		return "OK"
	case StateOKQueued:
		return "OK+todo"
	case StateCcit:
		return "ccit"
	case StateCcitNil:
		return "ccitnil"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Action tells an Acquire caller what to do next.
type Action int

// Acquire outcomes.
const (
	// ActionUse: the reference is usable now; take the surrogate.
	ActionUse Action = iota
	// ActionRegister: the caller created the entry and owns registration —
	// it must perform the dirty call and report through FinishRegister.
	ActionRegister
	// ActionWait: another goroutine (or the cleaner) is driving the life
	// cycle; block in Wait until the state settles.
	ActionWait
)

// Import errors.
var (
	// ErrReleased reports a call through a reference after Release.
	ErrReleased = errors.New("objtable: reference has been released")
	// ErrNotUsable reports an operation requiring StateOK on a reference
	// in another state.
	ErrNotUsable = errors.New("objtable: reference is not usable")
	// ErrRegistration wraps a failed dirty call reported to waiters.
	ErrRegistration = errors.New("objtable: reference registration failed")
)

// ImportEntry is the client-side record for one remote reference.
// All fields are guarded by the entry's shard in the owning Imports table.
type ImportEntry struct {
	Key       wire.Key
	Endpoints []string

	state     State
	surrogate any
	gen       uint64
	pins      int
	// holds counts independent local claims on the reference (Retain adds
	// one, Release drops one); the life-cycle release transition fires only
	// when the last hold is dropped. A usable entry normally carries one.
	holds       int
	wantRelease bool
	dead        bool
	err         error
}

// importShard is one stripe of the import table. Each key lives wholly in
// one shard; the shard's condition variable carries the state-change
// broadcasts for the keys it guards.
type importShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[wire.Key]*ImportEntry
	// lastSeq survives entry deletion: Birrell's sequence numbers must
	// increase across successive lifecycles of the same reference at the
	// same client, or the owner would discard a re-registration as stale.
	lastSeq map[wire.Key]uint64
	// lastGen survives entry deletion for the same reason lastSeq does,
	// but for the surrogate generation counter: a finalizer-driven cleanup
	// armed in one lifecycle may fire after the reference has been
	// released and re-imported, and generations must keep increasing or
	// the stale cleanup would match the fresh entry and release it out
	// from under live users.
	lastGen map[wire.Key]uint64
}

// Imports is the import (surrogate) table of one space. Construct with
// NewImports; safe for concurrent use.
type Imports struct {
	shards []importShard
	mask   uint64

	// contention counts lock acquisitions that found their shard held.
	contention atomic.Uint64
}

// NewImports returns an empty import table with the default shard count.
func NewImports() *Imports { return NewImportsSharded(DefaultShards) }

// NewImportsSharded returns an empty import table striped across n shards
// (rounded up to a power of two; n <= 1 yields a single-shard table).
func NewImportsSharded(n int) *Imports {
	n = normShards(n)
	im := &Imports{shards: make([]importShard, n), mask: uint64(n - 1)}
	for i := range im.shards {
		s := &im.shards[i]
		s.entries = make(map[wire.Key]*ImportEntry)
		s.lastSeq = make(map[wire.Key]uint64)
		s.lastGen = make(map[wire.Key]uint64)
		s.cond = sync.NewCond(&s.mu)
	}
	return im
}

// ShardCount reports the table's shard count.
func (im *Imports) ShardCount() int { return len(im.shards) }

// Contention reports how many lock acquisitions found their shard busy.
func (im *Imports) Contention() uint64 { return im.contention.Load() }

// keyHash spreads keys across shards: indices are sequential per owner,
// so both halves feed the mix.
func keyHash(k wire.Key) uint64 {
	h := k.Index ^ (uint64(k.Owner) * 0xC2B2AE3D27D4EB4F)
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// shardFor returns the shard guarding key.
func (im *Imports) shardFor(key wire.Key) *importShard {
	return &im.shards[keyHash(key)&im.mask]
}

// lock acquires a shard, counting the acquisitions that had to wait.
func (im *Imports) lock(s *importShard) {
	if !s.mu.TryLock() {
		im.contention.Add(1)
		s.mu.Lock()
	}
}

// nextSeqLocked allocates the next dirty/clean sequence number for key.
func (s *importShard) nextSeqLocked(key wire.Key) uint64 {
	s.lastSeq[key]++
	return s.lastSeq[key]
}

// dropLocked removes key's entry, banking its generation counter so the
// next lifecycle of the same key resumes from it rather than from zero.
func (s *importShard) dropLocked(key wire.Key, e *ImportEntry) {
	if e.gen > 0 {
		s.lastGen[key] = e.gen
	}
	delete(s.entries, key)
}

// NextSeq allocates a sequence number outside any entry lifecycle; the
// runtime uses it for strong cleans after a failed dirty call.
func (im *Imports) NextSeq(key wire.Key) uint64 {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	return s.nextSeqLocked(key)
}

// Acquire is the receive_copy transition: a wireRep for key has arrived.
// It returns the entry and the action the caller must take. For
// ActionRegister the returned seq is the dirty call's sequence number.
func (im *Imports) Acquire(key wire.Key, endpoints []string) (ent *ImportEntry, act Action, seq uint64) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		// gen resumes where the previous lifecycle left off (see lastGen),
		// so a cleanup armed before the entry died can never match again.
		e = &ImportEntry{Key: key, Endpoints: endpoints, state: StateNil, gen: s.lastGen[key]}
		s.entries[key] = e
		return e, ActionRegister, s.nextSeqLocked(key)
	}
	if len(endpoints) > 0 {
		e.Endpoints = endpoints
	}
	switch e.state {
	case StateNil, StateCcitNil:
		return e, ActionWait, 0
	case StateOK:
		if e.holds == 0 {
			// A fully released entry that has not yet transitioned (all
			// holds dropped while pinned): the new copy resurrects it.
			e.holds = 1
			e.wantRelease = false
		}
		return e, ActionUse, 0
	case StateOKQueued:
		// Resurrection: cancel the scheduled clean call by reverting to
		// StateOK; the cleaner skips queue entries whose state moved on.
		e.state = StateOK
		e.wantRelease = false
		e.holds = 1
		return e, ActionUse, 0
	case StateCcit:
		e.state = StateCcitNil
		return e, ActionWait, 0
	default:
		// Unreachable: entries never carry StateNone.
		panic(fmt.Sprintf("objtable: entry in impossible state %v", e.state))
	}
}

// FinishRegister completes an ActionRegister: the dirty call either
// succeeded (surrogate becomes usable) or failed (the entry dies and every
// waiter gets the error). On failure the caller must schedule a strong
// clean using NextSeq.
func (im *Imports) FinishRegister(key wire.Key, surrogate any, err error) (gen uint64) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return 0
	}
	if err != nil {
		e.dead = true
		e.err = fmt.Errorf("%w: %v", ErrRegistration, err)
		s.dropLocked(key, e)
	} else {
		e.state = StateOK
		e.surrogate = surrogate
		e.gen++
		e.holds = 1
		gen = e.gen
	}
	s.cond.Broadcast()
	return gen
}

// UseOrRebind returns the surrogate for a usable entry, giving the caller
// a chance — atomically with the lookup — to replace a surrogate whose
// weak referent has been collected. revive receives the stored surrogate;
// returning a non-nil replacement rebinds the entry under a fresh
// generation. It exists for finalizer-driven release (the paper's weak
// refs): the generation ties each surrogate incarnation to its cleanup,
// so a stale cleanup cannot release a successor.
func (im *Imports) UseOrRebind(key wire.Key, revive func(old any) (replacement any)) (s any, gen uint64, err error) {
	sh := im.shardFor(key)
	im.lock(sh)
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrReleased, key)
	}
	switch e.state {
	case StateOK, StateOKQueued:
	default:
		return nil, 0, fmt.Errorf("%w: %v is %v", ErrNotUsable, key, e.state)
	}
	if ns := revive(e.surrogate); ns != nil {
		e.surrogate = ns
		e.gen++
		// A fresh strong surrogate exists: cancel any release queued for
		// the dead incarnation (the cleanup may have fired between the
		// caller's Acquire and this rebind), exactly like receive_copy's
		// resurrection.
		if e.state == StateOKQueued {
			e.state = StateOK
		}
		e.wantRelease = false
		if e.holds == 0 {
			e.holds = 1
		}
	}
	return e.surrogate, e.gen, nil
}

// ReleaseGen is Release guarded by generation: it acts only when the
// entry still carries the surrogate incarnation the caller observed.
// Finalizer-driven cleanups use it so that a cleanup for a collected
// surrogate cannot release a rebound successor. The generation match is
// ground truth — the surrogate object is unreachable, so no holder can
// still use the reference — and therefore overrides any remaining holds.
func (im *Imports) ReleaseGen(key wire.Key, gen uint64) (needClean bool) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.gen != gen || e.state != StateOK {
		return false
	}
	e.holds = 0
	if e.pins > 0 {
		e.wantRelease = true
		return false
	}
	e.state = StateOKQueued
	return true
}

// Wait blocks until ent becomes usable or dies, returning the surrogate or
// the terminal error.
func (im *Imports) Wait(ent *ImportEntry) (any, error) {
	s := im.shardFor(ent.Key)
	im.lock(s)
	defer s.mu.Unlock()
	for {
		if ent.dead {
			return nil, ent.err
		}
		if ent.state == StateOK || ent.state == StateOKQueued {
			return ent.surrogate, nil
		}
		s.cond.Wait()
	}
}

// Use returns the surrogate for key if it is currently usable; calls
// through released or in-flight references fail.
func (im *Imports) Use(key wire.Key) (any, error) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrReleased, key)
	}
	switch e.state {
	case StateOK:
		return e.surrogate, nil
	case StateOKQueued, StateCcit, StateCcitNil:
		return nil, fmt.Errorf("%w: %v is %v", ErrReleased, key, e.state)
	default:
		return nil, fmt.Errorf("%w: %v is %v", ErrNotUsable, key, e.state)
	}
}

// Pin marks the reference in transit (a transient dirty entry on the
// sending side): Release is deferred until every pin is dropped.
func (im *Imports) Pin(key wire.Key) error {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.state != StateOK {
		return fmt.Errorf("%w: cannot pin %v", ErrNotUsable, key)
	}
	e.pins++
	return nil
}

// Unpin drops a transient pin. It reports whether a deferred release is
// now due, in which case the caller must enqueue a clean call.
func (im *Imports) Unpin(key wire.Key) (needClean bool) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	if e.pins > 0 {
		e.pins--
	}
	if e.pins == 0 && e.wantRelease && e.state == StateOK {
		e.state = StateOKQueued
		e.wantRelease = false
		return true
	}
	return false
}

// Release is the finalize transition: the reference is locally dead. It
// reports whether a clean call must be enqueued now; a pinned reference
// defers the release to the final Unpin, and releasing a non-usable
// reference is a no-op. When Retain has added extra holds, Release drops
// one hold and the life-cycle transition waits for the last.
func (im *Imports) Release(key wire.Key) (needClean bool) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.state != StateOK {
		return false
	}
	if e.holds > 1 {
		e.holds--
		return false
	}
	e.holds = 0
	if e.pins > 0 {
		e.wantRelease = true
		return false
	}
	e.state = StateOKQueued
	return true
}

// Retain adds an independent hold on a usable reference: the entry will
// not release until a matching Release drops it. It is the table half of
// core's Ref.Dup — directories and caches use it to keep a binding alive
// across their clients' Releases.
func (im *Imports) Retain(key wire.Key) error {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return fmt.Errorf("%w: %v", ErrReleased, key)
	}
	if e.state != StateOK {
		return fmt.Errorf("%w: %v is %v", ErrNotUsable, key, e.state)
	}
	if e.holds == 0 {
		// All prior holds dropped while the entry was pinned: retaining
		// revives it, cancelling the deferred release.
		e.wantRelease = false
	}
	e.holds++
	return nil
}

// BeginClean is the do_clean_call transition, executed by the cleaner when
// it dequeues a scheduled clean. It returns the sequence number and
// endpoints for the clean message, or ok=false if the entry was
// resurrected (or died) since it was queued and the clean must be skipped.
func (im *Imports) BeginClean(key wire.Key) (seq uint64, endpoints []string, ok bool) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, present := s.entries[key]
	if !present || e.state != StateOKQueued {
		return 0, nil, false
	}
	e.state = StateCcit
	return s.nextSeqLocked(key), e.Endpoints, true
}

// FinishClean is the receive_clean_ack transition. With err == nil:
// a ccit entry dies (⊥) and a ccitnil entry re-enters StateNil, in which
// case FinishClean returns redo=true and the new dirty sequence number —
// the caller must perform the dirty call and report via FinishRegister.
// A non-nil err (the clean was abandoned) kills the entry and wakes
// waiters with the error.
func (im *Imports) FinishClean(key wire.Key, err error) (redo bool, seq uint64) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false, 0
	}
	if err != nil {
		e.dead = true
		e.err = fmt.Errorf("%w: clean call abandoned: %v", ErrRegistration, err)
		s.dropLocked(key, e)
		s.cond.Broadcast()
		return false, 0
	}
	switch e.state {
	case StateCcit:
		s.dropLocked(key, e)
		s.cond.Broadcast()
		return false, 0
	case StateCcitNil:
		e.state = StateNil
		s.cond.Broadcast()
		return true, s.nextSeqLocked(key)
	default:
		// BeginClean put the entry in StateCcit; only receive_copy can
		// move it (to StateCcitNil), so anything else is a logic error.
		panic(fmt.Sprintf("objtable: FinishClean in state %v", e.state))
	}
}

// Kill retroactively fails a reference whose asynchronous registration
// (FIFO variant) did not reach the owner: the entry dies regardless of its
// current state, waiters and future users get the error, and the caller
// issues the strong clean.
func (im *Imports) Kill(key wire.Key, err error) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return
	}
	e.dead = true
	e.err = fmt.Errorf("%w: %v", ErrRegistration, err)
	s.dropLocked(key, e)
	s.cond.Broadcast()
}

// StateOf reports the current life-cycle state of key (StateNone when the
// entry is absent). Exposed for tests, tracing and the gcdemo example.
func (im *Imports) StateOf(key wire.Key) State {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return StateNone
	}
	return e.state
}

// HoldInfo is the cycle responder's view of a surrogate: how many
// independent local claims it carries, how many references to it are in
// transit, and its life-cycle state (StateNone when absent). A usable
// surrogate whose only claims are accounted for by exported holder
// objects, with nothing in transit, is a candidate cycle member; any
// other state conservatively roots it.
func (im *Imports) HoldInfo(key wire.Key) (holds, pins int, state State) {
	s := im.shardFor(key)
	im.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return 0, 0, StateNone
	}
	return e.holds, e.pins, e.state
}

// Len reports the number of live import entries.
func (im *Imports) Len() int {
	n := 0
	for i := range im.shards {
		s := &im.shards[i]
		im.lock(s)
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// OwnersSnapshot returns, for every owner this space currently holds live
// entries from, a set of endpoints it can be reached at. The lease
// renewal daemon drives on it.
func (im *Imports) OwnersSnapshot() map[wire.SpaceID][]string {
	out := make(map[wire.SpaceID][]string)
	for i := range im.shards {
		s := &im.shards[i]
		im.lock(s)
		for k, e := range s.entries {
			if _, ok := out[k.Owner]; !ok && len(e.Endpoints) > 0 {
				out[k.Owner] = append([]string(nil), e.Endpoints...)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Snapshot dumps the table for the live debug page, sorted by owner then
// index.
func (im *Imports) Snapshot() []obs.ImportInfo {
	var out []obs.ImportInfo
	for i := range im.shards {
		s := &im.shards[i]
		im.lock(s)
		for k, e := range s.entries {
			out = append(out, obs.ImportInfo{
				Owner:     k.Owner.String(),
				Index:     k.Index,
				State:     e.state.String(),
				Pins:      e.pins,
				Endpoints: append([]string(nil), e.Endpoints...),
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Keys snapshots the keys of all live entries.
func (im *Imports) Keys() []wire.Key {
	var keys []wire.Key
	for i := range im.shards {
		s := &im.shards[i]
		im.lock(s)
		for k := range s.entries {
			keys = append(keys, k)
		}
		s.mu.Unlock()
	}
	return keys
}
