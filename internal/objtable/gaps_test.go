package objtable

import (
	"errors"
	"testing"

	"netobjects/internal/wire"
)

func TestExportsIndexOfAndFingerprints(t *testing.T) {
	e := NewExports()
	obj := &thing{}
	ix, err := e.Export(obj, []uint64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.IndexOf(obj)
	if !ok || got != ix {
		t.Fatalf("IndexOf: %v %v", got, ok)
	}
	if _, ok := e.IndexOf(&thing{}); ok {
		t.Fatal("IndexOf found an unexported object")
	}
	ent, _ := e.Lookup(ix)
	if !ent.AcceptsFingerprint(7) || !ent.AcceptsFingerprint(9) {
		t.Fatal("accepted fingerprints rejected")
	}
	if ent.AcceptsFingerprint(8) {
		t.Fatal("unknown fingerprint accepted")
	}
	if e.Len() != 1 {
		t.Fatalf("len=%d", e.Len())
	}
}

func TestImportsKill(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	// A waiter blocked on a second acquire must be woken with the error.
	ent, act, _ := im.Acquire(testKey, nil)
	if act != ActionUse {
		t.Fatalf("action %v", act)
	}
	im.Kill(testKey, errors.New("async dirty failed"))
	if _, err := im.Wait(ent); !errors.Is(err, ErrRegistration) {
		t.Fatalf("wait after kill: %v", err)
	}
	if im.StateOf(testKey) != StateNone {
		t.Fatal("entry survived kill")
	}
	// Killing a dead key is a no-op.
	im.Kill(testKey, errors.New("again"))
	// A fresh lifecycle starts cleanly after a kill.
	_, act, seq := im.Acquire(testKey, nil)
	if act != ActionRegister || seq < 2 {
		t.Fatalf("fresh lifecycle after kill: %v seq=%d", act, seq)
	}
}

func TestImportsNextSeqStandalone(t *testing.T) {
	im := NewImports()
	s1 := im.NextSeq(testKey)
	s2 := im.NextSeq(testKey)
	if s2 <= s1 {
		t.Fatalf("NextSeq not increasing: %d %d", s1, s2)
	}
	// And it shares the counter with lifecycle allocations.
	_, act, s3 := im.Acquire(testKey, nil)
	if act != ActionRegister || s3 <= s2 {
		t.Fatalf("lifecycle seq %d after standalone %d", s3, s2)
	}
}

func TestImportsLenAndKeys(t *testing.T) {
	im := NewImports()
	k1 := wire.Key{Owner: 1, Index: 1}
	k2 := wire.Key{Owner: 1, Index: 2}
	register(t, im, k1)
	register(t, im, k2)
	if im.Len() != 2 {
		t.Fatalf("len=%d", im.Len())
	}
	keys := im.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys=%v", keys)
	}
	seen := map[wire.Key]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen[k1] || !seen[k2] {
		t.Fatalf("keys=%v", keys)
	}
}

func TestUseOrRebind(t *testing.T) {
	im := NewImports()
	s := register(t, im, testKey)

	// No rebind: revive returns nil, the stored surrogate comes back.
	got, gen1, err := im.UseOrRebind(testKey, func(old any) any {
		if old != s {
			t.Fatalf("revive saw %v", old)
		}
		return nil
	})
	if err != nil || got != s {
		t.Fatalf("got %v %v", got, err)
	}

	// Rebind: the replacement is stored under a new generation.
	ns := &surrogate{label: "revived"}
	got, gen2, err := im.UseOrRebind(testKey, func(any) any { return ns })
	if err != nil || got != ns {
		t.Fatalf("got %v %v", got, err)
	}
	if gen2 <= gen1 {
		t.Fatalf("generation did not advance: %d -> %d", gen1, gen2)
	}

	// Unusable states refuse.
	im.Release(testKey)
	im.BeginClean(testKey)
	if _, _, err := im.UseOrRebind(testKey, func(any) any { return nil }); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("ccit: %v", err)
	}
	// Absent key refuses.
	im.FinishClean(testKey, nil)
	if _, _, err := im.UseOrRebind(testKey, func(any) any { return nil }); !errors.Is(err, ErrReleased) {
		t.Fatalf("absent: %v", err)
	}
}

func TestReleaseGenGuards(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	_, gen, err := im.UseOrRebind(testKey, func(any) any { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// A stale generation must not release.
	if im.ReleaseGen(testKey, gen+1) {
		t.Fatal("stale generation released")
	}
	if im.StateOf(testKey) != StateOK {
		t.Fatal("state moved on stale release")
	}
	// The right generation does.
	if !im.ReleaseGen(testKey, gen) {
		t.Fatal("current generation refused")
	}
	if im.StateOf(testKey) != StateOKQueued {
		t.Fatal("release did not queue a clean")
	}
	// Absent key: no-op.
	if im.ReleaseGen(wire.Key{Owner: 9, Index: 9}, 1) {
		t.Fatal("absent key released")
	}
}

func TestReleaseGenDefersUnderPin(t *testing.T) {
	im := NewImports()
	register(t, im, testKey)
	_, gen, _ := im.UseOrRebind(testKey, func(any) any { return nil })
	im.Pin(testKey)
	if im.ReleaseGen(testKey, gen) {
		t.Fatal("released while pinned")
	}
	if !im.Unpin(testKey) {
		t.Fatal("deferred release lost")
	}
}
