package objtable

import (
	"errors"
	"testing"

	"netobjects/internal/wire"
)

// registerGen walks a fresh key through Acquire/FinishRegister and
// returns its generation (register in imports_test.go discards it).
func registerGen(t *testing.T, im *Imports, key wire.Key) uint64 {
	t.Helper()
	_, act, _ := im.Acquire(key, []string{"ep"})
	if act != ActionRegister {
		t.Fatalf("acquire: action %v", act)
	}
	gen := im.FinishRegister(key, &surrogate{label: "r"}, nil)
	if gen == 0 {
		t.Fatal("registration did not settle")
	}
	return gen
}

func TestRetainDefersRelease(t *testing.T) {
	im := NewImports()
	key := wire.Key{Owner: 1, Index: 7}
	registerGen(t, im, key)

	if err := im.Retain(key); err != nil {
		t.Fatal(err)
	}
	if im.Release(key) {
		t.Fatal("release with an outstanding hold scheduled a clean")
	}
	if st := im.StateOf(key); st != StateOK {
		t.Fatalf("state %v after first release", st)
	}
	if _, err := im.Use(key); err != nil {
		t.Fatalf("reference unusable while held: %v", err)
	}
	if !im.Release(key) {
		t.Fatal("final release did not schedule a clean")
	}
	if st := im.StateOf(key); st != StateOKQueued {
		t.Fatalf("state %v after final release", st)
	}
}

func TestRetainReleasedEntryFails(t *testing.T) {
	im := NewImports()
	key := wire.Key{Owner: 1, Index: 7}
	registerGen(t, im, key)
	if !im.Release(key) {
		t.Fatal("release did not schedule a clean")
	}
	if err := im.Retain(key); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("retain after release: %v", err)
	}
	if err := im.Retain(wire.Key{Owner: 2, Index: 1}); !errors.Is(err, ErrReleased) {
		t.Fatalf("retain of absent key: %v", err)
	}
}

func TestAcquireResurrectionResetsHolds(t *testing.T) {
	im := NewImports()
	key := wire.Key{Owner: 1, Index: 7}
	registerGen(t, im, key)
	if err := im.Retain(key); err != nil {
		t.Fatal(err)
	}
	im.Release(key)
	if !im.Release(key) {
		t.Fatal("final release did not schedule a clean")
	}
	// A new copy arrives before the clean is sent: the entry resurrects
	// with exactly one hold, so one Release re-queues the clean.
	if _, act, _ := im.Acquire(key, nil); act != ActionUse {
		t.Fatalf("resurrection action %v", act)
	}
	if st := im.StateOf(key); st != StateOK {
		t.Fatalf("state %v after resurrection", st)
	}
	if !im.Release(key) {
		t.Fatal("release after resurrection did not schedule a clean")
	}
}

func TestRetainWhilePinnedRevives(t *testing.T) {
	im := NewImports()
	key := wire.Key{Owner: 1, Index: 7}
	registerGen(t, im, key)
	if err := im.Pin(key); err != nil {
		t.Fatal(err)
	}
	// The lone hold drops while the reference is in transit: release is
	// deferred to the final Unpin.
	if im.Release(key) {
		t.Fatal("pinned release scheduled a clean")
	}
	// Retaining now revives the entry: the deferred release must not fire.
	if err := im.Retain(key); err != nil {
		t.Fatal(err)
	}
	if im.Unpin(key) {
		t.Fatal("unpin released a retained reference")
	}
	if _, err := im.Use(key); err != nil {
		t.Fatalf("reference unusable after revive: %v", err)
	}
	if !im.Release(key) {
		t.Fatal("final release did not schedule a clean")
	}
}

func TestReleaseGenOverridesHolds(t *testing.T) {
	im := NewImports()
	key := wire.Key{Owner: 1, Index: 7}
	gen := registerGen(t, im, key)
	for i := 0; i < 3; i++ {
		if err := im.Retain(key); err != nil {
			t.Fatal(err)
		}
	}
	// The surrogate object became unreachable: GC truth overrides the
	// outstanding holds (no holder can exist without the object).
	if !im.ReleaseGen(key, gen) {
		t.Fatal("ReleaseGen deferred to holds")
	}
	if st := im.StateOf(key); st != StateOKQueued {
		t.Fatalf("state %v after ReleaseGen", st)
	}
}
