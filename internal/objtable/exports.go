// Package objtable implements the per-space object tables of the network
// objects runtime: the export table an owner keeps for its concrete
// objects, and the import table a client keeps for its surrogates.
//
// The export table records, per exported object, the dirty set — which
// client spaces hold surrogates — together with the largest dirty/clean
// sequence number seen from each client, and a pin count standing in for
// the transient dirty entries that keep an object alive while a reference
// to it is in transit. The import table drives each remote reference
// through the life cycle of Birrell's algorithm, including the ccitnil
// state ("clean call in transit, reference wanted again") that the
// formalisation showed is required for correctness.
//
// Both tables are striped across a power-of-two number of shards so that
// a space holding millions of live objects under hundreds of concurrent
// callers never funnels every call through one mutex. Each entry lives
// wholly inside one shard — the export table allocates indices per shard
// with a stride equal to the shard count, so an object's identity slot
// (byObj) and its index slot (byIndex) are always guarded by the same
// lock — which keeps every state transition the same atomic critical
// section the formal rules require, just striped.
//
// The package is pure bookkeeping: it performs no I/O and holds no locks
// while the runtime is on the network.
package objtable

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"netobjects/internal/obs"
	"netobjects/internal/wire"
)

// DefaultShards is the shard count tables are created with. Power of two;
// sized so that 256 concurrent callers rarely collide on a shard while
// the per-space footprint stays trivial (two small maps per shard).
const DefaultShards = 128

// Export table errors.
var (
	// ErrNoSuchObject reports an operation on an index absent from the
	// export table (never exported, withdrawn, or already collected).
	ErrNoSuchObject = errors.New("objtable: no such exported object")
	// ErrNotExportable reports an attempt to export a value that cannot be
	// tracked by identity.
	ErrNotExportable = errors.New("objtable: object is not exportable (must be a pointer or other comparable reference type)")
	// ErrIndexInUse reports an ExportAt collision on a well-known index.
	ErrIndexInUse = errors.New("objtable: index already in use")
)

// normShards clamps a shard count to a power of two, defaulting when
// non-positive. A count of 1 is a valid (unsharded) configuration, used
// by benchmarks as the contention baseline.
func normShards(n int) int {
	if n <= 0 {
		return DefaultShards
	}
	p := 1
	for p < n && p < 1<<16 {
		p <<= 1
	}
	return p
}

// objHash distributes an exportable object's identity word across shards.
// Exportable kinds (pointer, chan, map, unsafe pointer) all carry their
// identity as a single pointer word; a Fibonacci multiply spreads the
// allocator's alignment patterns across the shard space.
func objHash(obj any) uint64 {
	h := uint64(reflect.ValueOf(obj).Pointer())
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// ExportEntry is the owner-side record for one exported object.
// All mutation goes through Exports methods; an entry obtained from
// Lookup must be treated as read-only snapshot data.
type ExportEntry struct {
	// Index is the object's slot in the table.
	Index uint64
	// Obj is the concrete object.
	Obj any
	// Fingerprints are the method-set fingerprints accepted on typed
	// calls: the concrete object's own, plus those of the remote
	// interfaces it was exported as implementing.
	Fingerprints []uint64
	// Pinned marks well-known objects (such as the agent) that are never
	// withdrawn even with an empty dirty set.
	Pinned bool

	clients map[wire.SpaceID]*clientInfo
	pins    int
}

// clientInfo tracks one client space's relationship to an exported object.
type clientInfo struct {
	// inSet reports current dirty-set membership.
	inSet bool
	// lastSeq is the largest dirty/clean sequence number seen from the
	// client; operations with seq <= lastSeq are ignored (Birrell's
	// sequence-number rule for out-of-order calls).
	lastSeq uint64
	// endpoints is where the owner can ping the client.
	endpoints []string
}

// exportShard is one stripe of the table: a slice of the index space
// (indices congruent to the shard's position, modulo the shard count)
// plus the identity map for the objects whose entries live here.
type exportShard struct {
	mu      sync.Mutex
	next    uint64
	byIndex map[uint64]*ExportEntry
	byObj   map[any]uint64
}

// Exports is the export table of one space. The zero value is not usable;
// construct with NewExports. Exports is safe for concurrent use.
type Exports struct {
	shards []exportShard
	mask   uint64

	// contention counts lock acquisitions that found their shard already
	// held — the signal that the shard count is too low for the load.
	contention atomic.Uint64

	// OnWithdraw, if non-nil, is called (without any shard lock) after an
	// entry is removed from the table because its dirty set emptied. The
	// runtime uses it for tracing; tests use it to observe collection.
	OnWithdraw func(index uint64, obj any)
}

// NewExports returns an empty export table with the default shard count.
func NewExports() *Exports { return NewExportsSharded(DefaultShards) }

// NewExportsSharded returns an empty export table striped across n shards
// (rounded up to a power of two; n <= 1 yields a single-shard table, the
// benchmark baseline).
func NewExportsSharded(n int) *Exports {
	n = normShards(n)
	e := &Exports{shards: make([]exportShard, n), mask: uint64(n - 1)}
	for i := range e.shards {
		s := &e.shards[i]
		s.byIndex = make(map[uint64]*ExportEntry)
		s.byObj = make(map[any]uint64)
		// The smallest index >= FirstUserIndex congruent to i (mod n), so
		// every index this shard allocates hashes back to it.
		s.next = uint64(i)
		for s.next < wire.FirstUserIndex {
			s.next += uint64(n)
		}
	}
	return e
}

// ShardCount reports the table's shard count.
func (e *Exports) ShardCount() int { return len(e.shards) }

// Contention reports how many lock acquisitions found their shard busy.
func (e *Exports) Contention() uint64 { return e.contention.Load() }

// shardForIndex returns the shard guarding index.
func (e *Exports) shardForIndex(index uint64) *exportShard {
	return &e.shards[index&e.mask]
}

// shardForObj returns the shard a fresh export of obj would live in.
func (e *Exports) shardForObj(obj any) *exportShard {
	return &e.shards[objHash(obj)&e.mask]
}

// lock acquires a shard, counting the acquisitions that had to wait.
func (e *Exports) lock(s *exportShard) {
	if !s.mu.TryLock() {
		e.contention.Add(1)
		s.mu.Lock()
	}
}

// exportable reports whether obj can be used as an identity map key.
func exportable(obj any) bool {
	if obj == nil {
		return false
	}
	switch reflect.TypeOf(obj).Kind() {
	case reflect.Pointer, reflect.Chan, reflect.Map, reflect.UnsafePointer:
		return true
	default:
		// Values are copied on interface conversion, so identity would be
		// meaningless even when the kind is comparable.
		return false
	}
}

// Export adds obj to the table (or finds its existing entry) and returns
// its index. Export is idempotent per object: marshaling the same concrete
// object twice yields the same wireRep while the entry lives.
func (e *Exports) Export(obj any, fingerprints []uint64) (uint64, error) {
	if !exportable(obj) {
		return 0, fmt.Errorf("%w: %T", ErrNotExportable, obj)
	}
	s := e.shardForObj(obj)
	e.lock(s)
	defer s.mu.Unlock()
	if ix, ok := s.byObj[obj]; ok {
		return ix, nil
	}
	ix := s.next
	for {
		// Skip over indices claimed by ExportAt (well-known slots may land
		// anywhere in the index space).
		if _, taken := s.byIndex[ix]; !taken {
			break
		}
		ix += uint64(len(e.shards))
	}
	s.next = ix + uint64(len(e.shards))
	s.byIndex[ix] = &ExportEntry{
		Index:        ix,
		Obj:          obj,
		Fingerprints: fingerprints,
		clients:      make(map[wire.SpaceID]*clientInfo),
	}
	s.byObj[obj] = ix
	return ix, nil
}

// ExportAt places obj at a specific well-known index and pins it there.
// It is how the bootstrap agent claims wire.AgentIndex. A pinned entry is
// never withdrawn, so — uniquely — its identity slot may live in a
// different shard from its index slot; the two inserts are sequential.
func (e *Exports) ExportAt(obj any, index uint64, fingerprints []uint64) error {
	if !exportable(obj) {
		return fmt.Errorf("%w: %T", ErrNotExportable, obj)
	}
	if index == wire.InvalidIndex {
		return fmt.Errorf("objtable: cannot export at the invalid index")
	}
	objShard := e.shardForObj(obj)
	e.lock(objShard)
	if _, ok := objShard.byObj[obj]; ok {
		objShard.mu.Unlock()
		return fmt.Errorf("objtable: object already exported")
	}
	// Reserve the identity slot first so a concurrent Export of the same
	// object cannot race past; roll it back if the index is taken.
	objShard.byObj[obj] = index
	objShard.mu.Unlock()

	ixShard := e.shardForIndex(index)
	e.lock(ixShard)
	if _, ok := ixShard.byIndex[index]; ok {
		ixShard.mu.Unlock()
		e.lock(objShard)
		delete(objShard.byObj, obj)
		objShard.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrIndexInUse, index)
	}
	ixShard.byIndex[index] = &ExportEntry{
		Index:        index,
		Obj:          obj,
		Fingerprints: fingerprints,
		Pinned:       true,
		clients:      make(map[wire.SpaceID]*clientInfo),
	}
	ixShard.mu.Unlock()
	return nil
}

// AcceptsFingerprint reports whether fp is one of the entry's accepted
// method-set fingerprints.
func (ent *ExportEntry) AcceptsFingerprint(fp uint64) bool {
	for _, f := range ent.Fingerprints {
		if f == fp {
			return true
		}
	}
	return false
}

// Lookup returns the entry at index. The returned entry must be treated as
// read-only.
func (e *Exports) Lookup(index uint64) (*ExportEntry, bool) {
	s := e.shardForIndex(index)
	e.lock(s)
	ent, ok := s.byIndex[index]
	s.mu.Unlock()
	return ent, ok
}

// IndexOf returns the index obj is currently exported at, if any.
func (e *Exports) IndexOf(obj any) (uint64, bool) {
	if !exportable(obj) {
		return 0, false
	}
	s := e.shardForObj(obj)
	e.lock(s)
	ix, ok := s.byObj[obj]
	s.mu.Unlock()
	return ix, ok
}

// Dirty applies a dirty call: client joins the dirty set of the object at
// index, provided seq exceeds the largest sequence number already seen
// from that client. Stale calls are ignored without error, per the paper.
func (e *Exports) Dirty(index uint64, client wire.SpaceID, seq uint64, endpoints []string) error {
	s := e.shardForIndex(index)
	e.lock(s)
	defer s.mu.Unlock()
	ent, ok := s.byIndex[index]
	if !ok {
		return fmt.Errorf("%w: index %d", ErrNoSuchObject, index)
	}
	ci := ent.clients[client]
	if ci == nil {
		ci = &clientInfo{}
		ent.clients[client] = ci
	}
	if seq <= ci.lastSeq {
		return nil // out-of-order duplicate: no effect
	}
	ci.lastSeq = seq
	ci.inSet = true
	if len(endpoints) > 0 {
		ci.endpoints = endpoints
	}
	return nil
}

// Clean applies a clean call: client leaves the dirty set if seq exceeds
// the largest sequence number seen. Cleans for unknown objects or clients
// are no-ops, as the paper specifies ("if it is not in the set, the clean
// call is a no-op"). Withdrawn objects are reported via OnWithdraw.
func (e *Exports) Clean(index uint64, client wire.SpaceID, seq uint64, strong bool) {
	s := e.shardForIndex(index)
	e.lock(s)
	ent, ok := s.byIndex[index]
	if !ok {
		s.mu.Unlock()
		return
	}
	ci := ent.clients[client]
	if ci == nil {
		// A strong clean must leave a tombstone so the dirty call it
		// cancels is ignored if it arrives later.
		if strong {
			ent.clients[client] = &clientInfo{lastSeq: seq}
		}
		s.mu.Unlock()
		return
	}
	// The sequence rule applies to strong cleans too: a strong clean that
	// has been overtaken by a later dirty call (a fresh registration)
	// must not clear it. "Strong" only changes the handling of unknown
	// clients above, where a tombstone must be left for the dirty call
	// the strong clean cancels.
	if seq <= ci.lastSeq {
		s.mu.Unlock()
		return
	}
	ci.lastSeq = seq
	ci.inSet = false
	withdrawn := e.maybeWithdrawLocked(s, ent)
	s.mu.Unlock()
	if withdrawn != nil && e.OnWithdraw != nil {
		e.OnWithdraw(withdrawn.Index, withdrawn.Obj)
	}
}

// Pin adds a transient dirty entry: the object at index must survive while
// a reference to it is in transit. Pins nest.
func (e *Exports) Pin(index uint64) error {
	s := e.shardForIndex(index)
	e.lock(s)
	defer s.mu.Unlock()
	ent, ok := s.byIndex[index]
	if !ok {
		return fmt.Errorf("%w: index %d", ErrNoSuchObject, index)
	}
	ent.pins++
	return nil
}

// Unpin removes a transient dirty entry, withdrawing the object if that
// leaves it unreferenced.
func (e *Exports) Unpin(index uint64) {
	s := e.shardForIndex(index)
	e.lock(s)
	ent, ok := s.byIndex[index]
	if !ok {
		s.mu.Unlock()
		return
	}
	if ent.pins > 0 {
		ent.pins--
	}
	withdrawn := e.maybeWithdrawLocked(s, ent)
	s.mu.Unlock()
	if withdrawn != nil && e.OnWithdraw != nil {
		e.OnWithdraw(withdrawn.Index, withdrawn.Obj)
	}
}

// maybeWithdrawLocked removes ent from its shard if nothing references it:
// no dirty-set member, no transient pin, not a pinned well-known object.
// It returns the entry if it was withdrawn. The caller holds s.mu; every
// non-pinned entry's byIndex and byObj slots live in the same shard, so
// the removal is one critical section.
func (e *Exports) maybeWithdrawLocked(s *exportShard, ent *ExportEntry) *ExportEntry {
	if ent.Pinned || ent.pins > 0 {
		return nil
	}
	for _, ci := range ent.clients {
		if ci.inSet {
			return nil
		}
	}
	delete(s.byIndex, ent.Index)
	delete(s.byObj, ent.Obj)
	return ent
}

// Sweep withdraws every unpinned entry whose dirty set is empty and that
// has no reference in transit, returning the withdrawn indices. Emptiness
// is normally acted on at clean/unpin transitions; Sweep is the
// local-collector integration point for entries that never made those
// transitions (exported but never imported) — the "object table cleanup"
// of the paper. Shards are swept one at a time; the table is never
// globally locked.
func (e *Exports) Sweep() []uint64 {
	var withdrawn []*ExportEntry
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			if w := e.maybeWithdrawLocked(s, ent); w != nil {
				withdrawn = append(withdrawn, w)
			}
		}
		s.mu.Unlock()
	}
	ixs := make([]uint64, 0, len(withdrawn))
	for _, w := range withdrawn {
		ixs = append(ixs, w.Index)
		if e.OnWithdraw != nil {
			e.OnWithdraw(w.Index, w.Obj)
		}
	}
	return ixs
}

// DropClient removes client from every dirty set — the owner's response to
// a client it believes has terminated — and returns the indices withdrawn
// as a result.
func (e *Exports) DropClient(client wire.SpaceID) []uint64 {
	var withdrawn []*ExportEntry
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			if _, ok := ent.clients[client]; !ok {
				continue
			}
			delete(ent.clients, client)
			if w := e.maybeWithdrawLocked(s, ent); w != nil {
				withdrawn = append(withdrawn, w)
			}
		}
		s.mu.Unlock()
	}
	ixs := make([]uint64, 0, len(withdrawn))
	for _, w := range withdrawn {
		ixs = append(ixs, w.Index)
		if e.OnWithdraw != nil {
			e.OnWithdraw(w.Index, w.Obj)
		}
	}
	return ixs
}

// Clients snapshots every client currently in some dirty set, with the
// endpoints it can be pinged at. The ping daemon drives on this.
func (e *Exports) Clients() map[wire.SpaceID][]string {
	out := make(map[wire.SpaceID][]string)
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			for id, ci := range ent.clients {
				if ci.inSet && out[id] == nil {
					out[id] = ci.endpoints
				}
			}
		}
		s.mu.Unlock()
	}
	return out
}

// ClientsShard snapshots the dirty-set clients of shard i only, with the
// endpoints each can be reached at. The lease expirer drives on this: it
// sweeps one stripe per tick so a million-entry table is never walked in
// one critical burst the way Clients() walks it.
func (e *Exports) ClientsShard(i int) map[wire.SpaceID][]string {
	out := make(map[wire.SpaceID][]string)
	s := &e.shards[i&int(e.mask)]
	e.lock(s)
	for _, ent := range s.byIndex {
		for id, ci := range ent.clients {
			if ci.inSet && out[id] == nil {
				out[id] = ci.endpoints
			}
		}
	}
	s.mu.Unlock()
	return out
}

// CycleSuspect is one export whose only liveness is its remote dirty set:
// not pinned, no reference in transit, at least one dirty member. Such an
// entry can be a member of a cross-space garbage cycle — nothing local
// keeps it alive, and the spaces keeping it alive may themselves be held
// only by it.
type CycleSuspect struct {
	// Index is the entry's slot in the export table.
	Index uint64
	// Obj is the concrete object (the detector asks it for its outbound
	// network references).
	Obj any
	// Clients maps each dirty-set member to its endpoints.
	Clients map[wire.SpaceID][]string
}

// Suspects snapshots the entries a cycle-detection pass should examine.
// Pinned and in-transit entries are excluded at snapshot time and must be
// re-checked at collection time — the snapshot is advisory, not a lock.
func (e *Exports) Suspects() []CycleSuspect {
	var out []CycleSuspect
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			if ent.Pinned || ent.pins > 0 {
				continue
			}
			var cl map[wire.SpaceID][]string
			for id, ci := range ent.clients {
				if !ci.inSet {
					continue
				}
				if cl == nil {
					cl = make(map[wire.SpaceID][]string)
				}
				cl[id] = ci.endpoints
			}
			if cl != nil {
				out = append(out, CycleSuspect{Index: ent.Index, Obj: ent.Obj, Clients: cl})
			}
		}
		s.mu.Unlock()
	}
	return out
}

// CycleExport is one export entry as the responder to a cycle query sees
// it: the object (asked for its declared outbound references), whether
// anything local roots it, and the spaces in its dirty set.
type CycleExport struct {
	// Index is the entry's slot in the export table.
	Index uint64
	// Obj is the concrete exported object.
	Obj any
	// Rooted reports local liveness beyond the dirty set: a pinned
	// well-known export or a reference in transit.
	Rooted bool
	// Clients are the dirty-set members.
	Clients []wire.SpaceID
}

// CycleExports snapshots every live export for the responder side of a
// cycle query. Unlike Suspects it includes pinned and in-transit entries
// — those may hold queried references too — marking them Rooted so the
// querier's trial deletion keeps whatever they hold alive.
func (e *Exports) CycleExports() []CycleExport {
	var out []CycleExport
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			ce := CycleExport{
				Index:  ent.Index,
				Obj:    ent.Obj,
				Rooted: ent.Pinned || ent.pins > 0,
			}
			for id, ci := range ent.clients {
				if ci.inSet {
					ce.Clients = append(ce.Clients, id)
				}
			}
			out = append(out, ce)
		}
		s.mu.Unlock()
	}
	return out
}

// Forget removes client from the dirty set of the object at index — the
// cycle collector's reclamation primitive, scoped to one (entry, client)
// edge where DropClient condemns a whole space. It refuses entries that
// are pinned or have a reference in transit, so a cycle verdict that went
// stale since the detection pass cannot free a live object. It reports
// whether the entry was withdrawn as a result.
func (e *Exports) Forget(index uint64, client wire.SpaceID) bool {
	s := e.shardForIndex(index)
	e.lock(s)
	ent, ok := s.byIndex[index]
	if !ok || ent.Pinned || ent.pins > 0 {
		s.mu.Unlock()
		return false
	}
	if _, ok := ent.clients[client]; !ok {
		s.mu.Unlock()
		return false
	}
	delete(ent.clients, client)
	w := e.maybeWithdrawLocked(s, ent)
	s.mu.Unlock()
	if w != nil {
		if e.OnWithdraw != nil {
			e.OnWithdraw(w.Index, w.Obj)
		}
		return true
	}
	return false
}

// HoldsDirty reports whether client is in the dirty set of the object at
// index; exposed for tests and the benchmark harness.
func (e *Exports) HoldsDirty(index uint64, client wire.SpaceID) bool {
	s := e.shardForIndex(index)
	e.lock(s)
	defer s.mu.Unlock()
	ent, ok := s.byIndex[index]
	if !ok {
		return false
	}
	ci := ent.clients[client]
	return ci != nil && ci.inSet
}

// DebugDump renders the table state for tests and troubleshooting.
func (e *Exports) DebugDump() string {
	var b strings.Builder
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for ix, ent := range s.byIndex {
			fmt.Fprintf(&b, "ix=%d obj=%T pins=%d pinned=%v members=[", ix, ent.Obj, ent.pins, ent.Pinned)
			for id, ci := range ent.clients {
				if ci.inSet {
					fmt.Fprintf(&b, "%v ", id)
				}
			}
			b.WriteString("]\n")
		}
		s.mu.Unlock()
	}
	return b.String()
}

// Len reports the number of live export entries.
func (e *Exports) Len() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		n += len(s.byIndex)
		s.mu.Unlock()
	}
	return n
}

// Snapshot dumps the table for the live debug page, sorted by index, with
// each entry's dirty-set members sorted by client id.
func (e *Exports) Snapshot() []obs.ExportInfo {
	var out []obs.ExportInfo
	for i := range e.shards {
		s := &e.shards[i]
		e.lock(s)
		for _, ent := range s.byIndex {
			info := obs.ExportInfo{
				Index:  ent.Index,
				Type:   fmt.Sprintf("%T", ent.Obj),
				Pinned: ent.Pinned,
				Pins:   ent.pins,
			}
			for id, ci := range ent.clients {
				if !ci.inSet {
					continue
				}
				info.Dirty = append(info.Dirty, obs.DirtyInfo{
					Client:    id.String(),
					Seq:       ci.lastSeq,
					Endpoints: append([]string(nil), ci.endpoints...),
				})
			}
			sort.Slice(info.Dirty, func(i, j int) bool { return info.Dirty[i].Client < info.Dirty[j].Client })
			out = append(out, info)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
