// Package objtable implements the per-space object tables of the network
// objects runtime: the export table an owner keeps for its concrete
// objects, and the import table a client keeps for its surrogates.
//
// The export table records, per exported object, the dirty set — which
// client spaces hold surrogates — together with the largest dirty/clean
// sequence number seen from each client, and a pin count standing in for
// the transient dirty entries that keep an object alive while a reference
// to it is in transit. The import table drives each remote reference
// through the life cycle of Birrell's algorithm, including the ccitnil
// state ("clean call in transit, reference wanted again") that the
// formalisation showed is required for correctness.
//
// The package is pure bookkeeping: it performs no I/O and holds no locks
// while the runtime is on the network, which keeps every state transition
// an atomic critical section exactly as the formal rules require.
package objtable

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"netobjects/internal/obs"
	"netobjects/internal/wire"
)

// Export table errors.
var (
	// ErrNoSuchObject reports an operation on an index absent from the
	// export table (never exported, withdrawn, or already collected).
	ErrNoSuchObject = errors.New("objtable: no such exported object")
	// ErrNotExportable reports an attempt to export a value that cannot be
	// tracked by identity.
	ErrNotExportable = errors.New("objtable: object is not exportable (must be a pointer or other comparable reference type)")
	// ErrIndexInUse reports an ExportAt collision on a well-known index.
	ErrIndexInUse = errors.New("objtable: index already in use")
)

// ExportEntry is the owner-side record for one exported object.
// All mutation goes through Exports methods; an entry obtained from
// Lookup must be treated as read-only snapshot data.
type ExportEntry struct {
	// Index is the object's slot in the table.
	Index uint64
	// Obj is the concrete object.
	Obj any
	// Fingerprints are the method-set fingerprints accepted on typed
	// calls: the concrete object's own, plus those of the remote
	// interfaces it was exported as implementing.
	Fingerprints []uint64
	// Pinned marks well-known objects (such as the agent) that are never
	// withdrawn even with an empty dirty set.
	Pinned bool

	clients map[wire.SpaceID]*clientInfo
	pins    int
}

// clientInfo tracks one client space's relationship to an exported object.
type clientInfo struct {
	// inSet reports current dirty-set membership.
	inSet bool
	// lastSeq is the largest dirty/clean sequence number seen from the
	// client; operations with seq <= lastSeq are ignored (Birrell's
	// sequence-number rule for out-of-order calls).
	lastSeq uint64
	// endpoints is where the owner can ping the client.
	endpoints []string
}

// Exports is the export table of one space. The zero value is not usable;
// construct with NewExports. Exports is safe for concurrent use.
type Exports struct {
	mu      sync.Mutex
	next    uint64
	byIndex map[uint64]*ExportEntry
	byObj   map[any]uint64

	// OnWithdraw, if non-nil, is called (without the table lock) after an
	// entry is removed from the table because its dirty set emptied. The
	// runtime uses it for tracing; tests use it to observe collection.
	OnWithdraw func(index uint64, obj any)
}

// NewExports returns an empty export table.
func NewExports() *Exports {
	return &Exports{
		next:    wire.FirstUserIndex,
		byIndex: make(map[uint64]*ExportEntry),
		byObj:   make(map[any]uint64),
	}
}

// exportable reports whether obj can be used as an identity map key.
func exportable(obj any) bool {
	if obj == nil {
		return false
	}
	switch reflect.TypeOf(obj).Kind() {
	case reflect.Pointer, reflect.Chan, reflect.Map, reflect.UnsafePointer:
		return true
	default:
		// Values are copied on interface conversion, so identity would be
		// meaningless even when the kind is comparable.
		return false
	}
}

// Export adds obj to the table (or finds its existing entry) and returns
// its index. Export is idempotent per object: marshaling the same concrete
// object twice yields the same wireRep while the entry lives.
func (e *Exports) Export(obj any, fingerprints []uint64) (uint64, error) {
	if !exportable(obj) {
		return 0, fmt.Errorf("%w: %T", ErrNotExportable, obj)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ix, ok := e.byObj[obj]; ok {
		return ix, nil
	}
	ix := e.next
	e.next++
	e.byIndex[ix] = &ExportEntry{
		Index:        ix,
		Obj:          obj,
		Fingerprints: fingerprints,
		clients:      make(map[wire.SpaceID]*clientInfo),
	}
	e.byObj[obj] = ix
	return ix, nil
}

// ExportAt places obj at a specific well-known index and pins it there.
// It is how the bootstrap agent claims wire.AgentIndex.
func (e *Exports) ExportAt(obj any, index uint64, fingerprints []uint64) error {
	if !exportable(obj) {
		return fmt.Errorf("%w: %T", ErrNotExportable, obj)
	}
	if index == wire.InvalidIndex {
		return fmt.Errorf("objtable: cannot export at the invalid index")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byIndex[index]; ok {
		return fmt.Errorf("%w: %d", ErrIndexInUse, index)
	}
	if _, ok := e.byObj[obj]; ok {
		return fmt.Errorf("objtable: object already exported")
	}
	e.byIndex[index] = &ExportEntry{
		Index:        index,
		Obj:          obj,
		Fingerprints: fingerprints,
		Pinned:       true,
		clients:      make(map[wire.SpaceID]*clientInfo),
	}
	e.byObj[obj] = index
	return nil
}

// AcceptsFingerprint reports whether fp is one of the entry's accepted
// method-set fingerprints.
func (ent *ExportEntry) AcceptsFingerprint(fp uint64) bool {
	for _, f := range ent.Fingerprints {
		if f == fp {
			return true
		}
	}
	return false
}

// Lookup returns the entry at index. The returned entry must be treated as
// read-only.
func (e *Exports) Lookup(index uint64) (*ExportEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byIndex[index]
	return ent, ok
}

// IndexOf returns the index obj is currently exported at, if any.
func (e *Exports) IndexOf(obj any) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ix, ok := e.byObj[obj]
	return ix, ok
}

// Dirty applies a dirty call: client joins the dirty set of the object at
// index, provided seq exceeds the largest sequence number already seen
// from that client. Stale calls are ignored without error, per the paper.
func (e *Exports) Dirty(index uint64, client wire.SpaceID, seq uint64, endpoints []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byIndex[index]
	if !ok {
		return fmt.Errorf("%w: index %d", ErrNoSuchObject, index)
	}
	ci := ent.clients[client]
	if ci == nil {
		ci = &clientInfo{}
		ent.clients[client] = ci
	}
	if seq <= ci.lastSeq {
		return nil // out-of-order duplicate: no effect
	}
	ci.lastSeq = seq
	ci.inSet = true
	if len(endpoints) > 0 {
		ci.endpoints = endpoints
	}
	return nil
}

// Clean applies a clean call: client leaves the dirty set if seq exceeds
// the largest sequence number seen. Cleans for unknown objects or clients
// are no-ops, as the paper specifies ("if it is not in the set, the clean
// call is a no-op"). It returns the objects withdrawn from the table as a
// result, already removed; the caller reports them via OnWithdraw.
func (e *Exports) Clean(index uint64, client wire.SpaceID, seq uint64, strong bool) {
	e.mu.Lock()
	ent, ok := e.byIndex[index]
	if !ok {
		e.mu.Unlock()
		return
	}
	ci := ent.clients[client]
	if ci == nil {
		// A strong clean must leave a tombstone so the dirty call it
		// cancels is ignored if it arrives later.
		if strong {
			ent.clients[client] = &clientInfo{lastSeq: seq}
		}
		e.mu.Unlock()
		return
	}
	// The sequence rule applies to strong cleans too: a strong clean that
	// has been overtaken by a later dirty call (a fresh registration)
	// must not clear it. "Strong" only changes the handling of unknown
	// clients above, where a tombstone must be left for the dirty call
	// the strong clean cancels.
	if seq <= ci.lastSeq {
		e.mu.Unlock()
		return
	}
	ci.lastSeq = seq
	ci.inSet = false
	withdrawn := e.maybeWithdrawLocked(ent)
	e.mu.Unlock()
	if withdrawn != nil && e.OnWithdraw != nil {
		e.OnWithdraw(withdrawn.Index, withdrawn.Obj)
	}
}

// Pin adds a transient dirty entry: the object at index must survive while
// a reference to it is in transit. Pins nest.
func (e *Exports) Pin(index uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byIndex[index]
	if !ok {
		return fmt.Errorf("%w: index %d", ErrNoSuchObject, index)
	}
	ent.pins++
	return nil
}

// Unpin removes a transient dirty entry, withdrawing the object if that
// leaves it unreferenced.
func (e *Exports) Unpin(index uint64) {
	e.mu.Lock()
	ent, ok := e.byIndex[index]
	if !ok {
		e.mu.Unlock()
		return
	}
	if ent.pins > 0 {
		ent.pins--
	}
	withdrawn := e.maybeWithdrawLocked(ent)
	e.mu.Unlock()
	if withdrawn != nil && e.OnWithdraw != nil {
		e.OnWithdraw(withdrawn.Index, withdrawn.Obj)
	}
}

// maybeWithdrawLocked removes ent from the table if nothing references it:
// no dirty-set member, no transient pin, not a pinned well-known object.
// It returns the entry if it was withdrawn.
func (e *Exports) maybeWithdrawLocked(ent *ExportEntry) *ExportEntry {
	if ent.Pinned || ent.pins > 0 {
		return nil
	}
	for _, ci := range ent.clients {
		if ci.inSet {
			return nil
		}
	}
	delete(e.byIndex, ent.Index)
	delete(e.byObj, ent.Obj)
	return ent
}

// Sweep withdraws every unpinned entry whose dirty set is empty and that
// has no reference in transit, returning the withdrawn indices. Emptiness
// is normally acted on at clean/unpin transitions; Sweep is the
// local-collector integration point for entries that never made those
// transitions (exported but never imported) — the "object table cleanup"
// of the paper.
func (e *Exports) Sweep() []uint64 {
	e.mu.Lock()
	var withdrawn []*ExportEntry
	for _, ent := range e.byIndex {
		if w := e.maybeWithdrawLocked(ent); w != nil {
			withdrawn = append(withdrawn, w)
		}
	}
	e.mu.Unlock()
	ixs := make([]uint64, 0, len(withdrawn))
	for _, w := range withdrawn {
		ixs = append(ixs, w.Index)
		if e.OnWithdraw != nil {
			e.OnWithdraw(w.Index, w.Obj)
		}
	}
	return ixs
}

// DropClient removes client from every dirty set — the owner's response to
// a client it believes has terminated — and returns the indices withdrawn
// as a result.
func (e *Exports) DropClient(client wire.SpaceID) []uint64 {
	e.mu.Lock()
	var withdrawn []*ExportEntry
	for _, ent := range e.byIndex {
		if _, ok := ent.clients[client]; !ok {
			continue
		}
		delete(ent.clients, client)
		if w := e.maybeWithdrawLocked(ent); w != nil {
			withdrawn = append(withdrawn, w)
		}
	}
	e.mu.Unlock()
	ixs := make([]uint64, 0, len(withdrawn))
	for _, w := range withdrawn {
		ixs = append(ixs, w.Index)
		if e.OnWithdraw != nil {
			e.OnWithdraw(w.Index, w.Obj)
		}
	}
	return ixs
}

// Clients snapshots every client currently in some dirty set, with the
// endpoints it can be pinged at. The ping daemon drives on this.
func (e *Exports) Clients() map[wire.SpaceID][]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[wire.SpaceID][]string)
	for _, ent := range e.byIndex {
		for id, ci := range ent.clients {
			if ci.inSet && out[id] == nil {
				out[id] = ci.endpoints
			}
		}
	}
	return out
}

// HoldsDirty reports whether client is in the dirty set of the object at
// index; exposed for tests and the benchmark harness.
func (e *Exports) HoldsDirty(index uint64, client wire.SpaceID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byIndex[index]
	if !ok {
		return false
	}
	ci := ent.clients[client]
	return ci != nil && ci.inSet
}

// DebugDump renders the table state for tests and troubleshooting.
func (e *Exports) DebugDump() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b strings.Builder
	for ix, ent := range e.byIndex {
		fmt.Fprintf(&b, "ix=%d obj=%T pins=%d pinned=%v members=[", ix, ent.Obj, ent.pins, ent.Pinned)
		for id, ci := range ent.clients {
			if ci.inSet {
				fmt.Fprintf(&b, "%v ", id)
			}
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Len reports the number of live export entries.
func (e *Exports) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byIndex)
}

// Snapshot dumps the table for the live debug page, sorted by index, with
// each entry's dirty-set members sorted by client id.
func (e *Exports) Snapshot() []obs.ExportInfo {
	e.mu.Lock()
	out := make([]obs.ExportInfo, 0, len(e.byIndex))
	for _, ent := range e.byIndex {
		info := obs.ExportInfo{
			Index:  ent.Index,
			Type:   fmt.Sprintf("%T", ent.Obj),
			Pinned: ent.Pinned,
			Pins:   ent.pins,
		}
		for id, ci := range ent.clients {
			if !ci.inSet {
				continue
			}
			info.Dirty = append(info.Dirty, obs.DirtyInfo{
				Client:    id.String(),
				Seq:       ci.lastSeq,
				Endpoints: append([]string(nil), ci.endpoints...),
			})
		}
		sort.Slice(info.Dirty, func(i, j int) bool { return info.Dirty[i].Client < info.Dirty[j].Client })
		out = append(out, info)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
