// Nobench regenerates the evaluation tables and figures (see
// EXPERIMENTS.md): invocation latency by argument type against the raw
// RPC baseline (T1), marshaling costs (T2), throughput vs payload (F1),
// collector protocol costs (T3), model-checking results (T4), the variant
// ablation (T5), and fault-tolerance behaviour (T6).
//
// Usage:
//
//	nobench [-t t1,t2,f1,t3,t4,t5,t6,e1,e2,e3,e4,e5,e6,e7|all] [-quick] [-obs] [-http addr]
//	nobench -chaos [-chaos-profile loss|partition|crash|mixed|registry|distarray|none]
//	        [-chaos-transport inmem|tcp] [-chaos-seed N] [-chaos-spaces N]
//	        [-chaos-ops N] [-obs] [-http addr]
//
// With -obs every space the experiments create shares one metrics set and
// the aggregate digest is printed after the run; -http additionally serves
// the live /metrics and /debug/netobj endpoint for the duration (and
// implies -obs).
//
// With -chaos, instead of the benchmark tables, nobench runs the
// fault-injection soak (internal/chaos): N spaces of the real stack under
// a seeded fault schedule, with the collector invariants checked after
// heal. The same seed reproduces the same run. Exit status is non-zero on
// any invariant violation.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"netobjects"
	"netobjects/internal/baseline/srcrpc"
	"netobjects/internal/chaos"
	"netobjects/internal/distarray"
	"netobjects/internal/objtable"
	"netobjects/internal/pickle"
	"netobjects/internal/refmodel"
	"netobjects/internal/registry"
	"netobjects/internal/transport"
	"netobjects/internal/wire"
)

var (
	quick = flag.Bool("quick", false, "fewer iterations, for smoke runs")

	// obsMetrics, when non-nil, is shared by every space the experiments
	// create, so the digest aggregates the whole run.
	obsMetrics *netobjects.Metrics
	// obsRing backs the -http trace views (and the chaos soak's event
	// stream when -chaos -http are combined).
	obsRing *netobjects.RingTracer
)

// withObs installs the shared metrics set on a space's options.
func withObs(o *netobjects.Options) {
	if obsMetrics != nil {
		o.Metrics = obsMetrics
	}
}

func main() {
	which := flag.String("t", "all", "comma-separated experiments: t1,t2,f1,t3,t4,t5,t6,e1,e2,e3,e4,e5,e6,e7")
	obsFlag := flag.Bool("obs", false, "aggregate runtime metrics across experiments and print the digest")
	httpAddr := flag.String("http", "", "serve live /metrics and /debug/netobj on this address during the run (implies -obs)")
	chaosFlag := flag.Bool("chaos", false, "run the fault-injection soak instead of the benchmark tables")
	chaosProfile := flag.String("chaos-profile", "mixed", "fault profile: loss, partition, crash, mixed, registry, distarray, none")
	chaosTransport := flag.String("chaos-transport", "inmem", "transport under the soak: inmem or tcp")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the workload and fault schedule (same seed, same run)")
	chaosSpaces := flag.Int("chaos-spaces", 4, "number of spaces in the soak")
	chaosOps := flag.Int("chaos-ops", 400, "workload operations to run")
	flag.Parse()

	if *obsFlag || *httpAddr != "" {
		obsMetrics = netobjects.NewMetrics()
	}
	if *httpAddr != "" {
		obsRing = netobjects.NewRingTracer(1024)
		o := &netobjects.Observability{Metrics: obsMetrics, Tracer: obsRing}
		srv := &http.Server{Addr: *httpAddr, Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("nobench: telemetry at http://%s/metrics\n", *httpAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "nobench: http:", err)
			}
		}()
		defer srv.Close()
	}

	if *chaosFlag {
		if err := runChaos(*chaosProfile, *chaosTransport, *chaosSeed, *chaosSpaces, *chaosOps); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		if obsMetrics != nil {
			fmt.Printf("\n========== METRICS DIGEST ==========\n%s", obsMetrics.Registry().Summary())
		}
		return
	}

	want := map[string]bool{}
	for _, t := range strings.Split(*which, ",") {
		want[strings.TrimSpace(t)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("\n========== %s ==========\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("t1", runT1)
	run("t2", runT2)
	run("f1", runF1)
	run("t3", runT3)
	run("t4", runT4)
	run("t5", runT5)
	run("t6", runT6)
	run("e1", runE1)
	run("e2", runE2)
	run("e3", runE3)
	run("e4", runE4)
	run("e5", runE5)
	run("e6", runE6)
	run("e7", runE7)

	if obsMetrics != nil {
		fmt.Printf("\n========== METRICS DIGEST ==========\n%s", obsMetrics.Registry().Summary())
	}
}

func iters(n int) int {
	if *quick {
		return max(n/10, 10)
	}
	return n
}

// measure runs op repeatedly and returns the median latency.
func measure(n int, op func() error) (time.Duration, error) {
	// Warm up connections and codec caches.
	for i := 0; i < 3; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, n)
	for i := range samples {
		start := time.Now()
		if err := op(); err != nil {
			return 0, err
		}
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

// env is a connected owner/client pair plus raw-RPC counterparts.
type env struct {
	owner, client *netobjects.Space
	ref           *netobjects.Ref
	raw           *srcrpc.Client
	rawEP         string
	closers       []func()
}

func (e *env) close() {
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
}

type benchService struct{ held []*netobjects.Ref }

func (s *benchService) Null() error                     { return nil }
func (s *benchService) FourInts(a, b, c, d int64) error { return nil }
func (s *benchService) Text(t string) (int64, error)    { return int64(len(t)), nil }
func (s *benchService) Bytes(b []byte) (int64, error)   { return int64(len(b)), nil }
func (s *benchService) TakeRef(r *netobjects.Ref) error {
	s.held = append(s.held, r)
	return nil
}

// TakeRefSlow simulates a method whose execution time can absorb the
// dirty round trip of its reference argument (the FIFO variant's win).
func (s *benchService) TakeRefSlow(r *netobjects.Ref) error {
	time.Sleep(10 * time.Millisecond)
	s.held = append(s.held, r)
	return nil
}

func newEnv(proto string) (*env, error) {
	var tr netobjects.Transport
	switch proto {
	case "inmem":
		tr = netobjects.NewMem()
	case "tcp":
		tr = netobjects.NewTCP()
	}
	e := &env{}
	mk := func(name string) (*netobjects.Space, error) {
		opts := netobjects.Options{
			Name:         name,
			Transports:   []netobjects.Transport{tr},
			PingInterval: time.Hour,
		}
		withObs(&opts)
		sp, err := netobjects.New(opts)
		if err != nil {
			return nil, err
		}
		e.closers = append(e.closers, func() { _ = sp.Close() })
		return sp, nil
	}
	var err error
	if e.owner, err = mk("owner"); err != nil {
		return nil, err
	}
	if e.client, err = mk("client"); err != nil {
		return nil, err
	}
	ref, err := e.owner.Export(&benchService{})
	if err != nil {
		return nil, err
	}
	w, err := ref.WireRep()
	if err != nil {
		return nil, err
	}
	if e.ref, err = e.client.Import(w); err != nil {
		return nil, err
	}

	reg := transport.NewRegistry(tr.(transport.Transport))
	l, err := reg.Listen(proto + ":")
	if err != nil {
		return nil, err
	}
	srv := srcrpc.NewServer()
	srv.Handle("null", func(p []byte) ([]byte, error) { return nil, nil })
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle("sink", func(p []byte) ([]byte, error) { return nil, nil })
	srv.Serve(l)
	e.closers = append(e.closers, srv.Close)
	e.raw = srcrpc.NewClient(reg, 30*time.Second)
	e.closers = append(e.closers, e.raw.Close)
	e.rawEP = l.Endpoint()
	return e, nil
}

// --- T1 ------------------------------------------------------------------

func runT1() error {
	fmt.Println("T1: remote invocation latency by argument type (median)")
	n := iters(2000)
	type row struct {
		name string
		op   func(e *env) func() error
	}
	text1k := strings.Repeat("x", 1024)
	text10k := strings.Repeat("x", 10*1024)
	rows := []row{
		{"null call (dynamic)", func(e *env) func() error {
			return func() error { _, err := e.ref.Call("Null"); return err }
		}},
		{"null call (typed stub)", func(e *env) func() error {
			return func() error { _, err := e.ref.InvokeTyped("Null", 0, nil, nil); return err }
		}},
		{"null call (raw RPC)", func(e *env) func() error {
			return func() error { _, err := e.raw.Call(e.rawEP, "null", nil); return err }
		}},
		{"four int64 args", func(e *env) func() error {
			return func() error {
				_, err := e.ref.Call("FourInts", int64(1), int64(2), int64(3), int64(4))
				return err
			}
		}},
		{"1 KB text arg", func(e *env) func() error {
			return func() error { _, err := e.ref.Call("Text", text1k); return err }
		}},
		{"10 KB text arg", func(e *env) func() error {
			return func() error { _, err := e.ref.Call("Text", text10k); return err }
		}},
	}
	fmt.Printf("%-26s %14s %14s\n", "argument shape", "inmem", "tcp-loopback")
	for _, r := range rows {
		var cells []string
		for _, proto := range []string{"inmem", "tcp"} {
			e, err := newEnv(proto)
			if err != nil {
				return err
			}
			med, err := measure(n, r.op(e))
			e.close()
			if err != nil {
				return err
			}
			cells = append(cells, med.String())
		}
		fmt.Printf("%-26s %14s %14s\n", r.name, cells[0], cells[1])
	}
	fmt.Println("shape check: net objects null call should sit a small factor above raw RPC;")
	fmt.Println("typed stubs at or below dynamic calls; latency grows with payload.")
	return nil
}

// --- T2 ------------------------------------------------------------------

func runT2() error {
	fmt.Println("T2: pickle (marshaling) cost by value shape")
	p := pickle.New(pickle.NewRegistry(), nil)
	type sample struct {
		name string
		v    any
	}
	ints := make([]int, 1000)
	for i := range ints {
		ints[i] = i
	}
	m := map[string]int64{}
	for i := 0; i < 100; i++ {
		m[fmt.Sprintf("key-%03d", i)] = int64(i)
	}
	type node struct {
		Name string
		Next *node
	}
	p.Registry().Register(node{})
	chain := &node{Name: "a", Next: &node{Name: "b", Next: &node{Name: "c"}}}
	samples := []sample{
		{"int64", int64(123456)},
		{"string 1KB", strings.Repeat("s", 1024)},
		{"[]byte 64KB", bytes.Repeat([]byte("b"), 64<<10)},
		{"[]int 1000", ints},
		{"map[string]int64 100", m},
		{"linked struct x3", chain},
	}
	n := iters(5000)
	fmt.Printf("%-22s %12s %12s %10s\n", "value", "marshal", "unmarshal", "bytes")
	for _, s := range samples {
		buf, err := p.Marshal(nil, s.v)
		if err != nil {
			return err
		}
		me, err := measure(n, func() error {
			_, err := p.Marshal(buf[:0], s.v)
			return err
		})
		if err != nil {
			return err
		}
		var out any
		ue, err := measure(n, func() error { return p.Unmarshal(buf, &out) })
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %12s %12s %10d\n", s.name, me, ue, len(buf))
	}
	return nil
}

// --- F1 ------------------------------------------------------------------

func runF1() error {
	fmt.Println("F1: throughput vs payload size (tcp loopback; one round trip per op)")
	n := iters(300)
	fmt.Printf("%10s %16s %16s %8s\n", "payload", "netobj MB/s", "raw RPC MB/s", "ratio")
	for _, size := range []int{64, 1 << 10, 16 << 10, 256 << 10, 1 << 20} {
		e, err := newEnv("tcp")
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte("p"), size)
		no, err := measure(n, func() error {
			_, err := e.ref.Call("Bytes", payload)
			return err
		})
		if err != nil {
			e.close()
			return err
		}
		raw, err := measure(n, func() error {
			_, err := e.raw.Call(e.rawEP, "sink", payload)
			return err
		})
		e.close()
		if err != nil {
			return err
		}
		mbs := func(d time.Duration) float64 {
			return float64(size) / d.Seconds() / (1 << 20)
		}
		fmt.Printf("%10d %16.1f %16.1f %8.2f\n", size, mbs(no), mbs(raw), no.Seconds()/raw.Seconds())
	}
	fmt.Println("shape check: the object-layer ratio shrinks toward 1 as payload grows")
	fmt.Println("(fixed per-call cost amortized across the same one-way payload).")
	return nil
}

// --- T3 ------------------------------------------------------------------

func runT3() error {
	fmt.Println("T3: collector protocol costs")
	n := iters(500)
	for _, proto := range []string{"inmem", "tcp"} {
		e, err := newEnv(proto)
		if err != nil {
			return err
		}
		// Full life cycle: export, import (dirty call), release (clean).
		cycle, err := measure(n, func() error {
			obj := &benchService{}
			r, err := e.owner.Export(obj)
			if err != nil {
				return err
			}
			w, err := r.WireRep()
			if err != nil {
				return err
			}
			cref, err := e.client.Import(w)
			if err != nil {
				return err
			}
			cref.Release()
			return nil
		})
		if err != nil {
			e.close()
			return err
		}
		w, _ := e.ref.WireRep()
		hit, err := measure(n, func() error {
			_, err := e.client.Import(w)
			return err
		})
		if err != nil {
			e.close()
			return err
		}
		// Let stragglers from the life-cycle measurements (async clean
		// calls) drain before counting steady-state traffic.
		settle := time.Now()
		for time.Since(settle) < 2*time.Second {
			s1 := e.client.Stats()
			time.Sleep(50 * time.Millisecond)
			s2 := e.client.Stats()
			if s1.CleanSent == s2.CleanSent && s1.DirtySent == s2.DirtySent {
				break
			}
		}
		before := e.client.Stats()
		if _, err := e.ref.Call("Null"); err != nil {
			e.close()
			return err
		}
		after := e.client.Stats()
		fmt.Printf("  [%s] import+release life cycle: %v; re-import (table hit): %v; GC msgs per steady call: %d\n",
			proto, cycle, hit,
			(after.DirtySent-before.DirtySent)+(after.CleanSent-before.CleanSent))
		e.close()
	}
	fmt.Println("shape check: the table hit is ~free; a steady call costs zero collector messages;")
	fmt.Println("the first import pays one dirty round trip (plus one clean at release).")

	// Clean-call batching: N releases coalesce into few exchanges.
	// (Batching is always on; this cell verifies the coalescing shows up.)
	mem := netobjects.NewMem()
	mem.Latency = 2 * time.Millisecond
	mkB := func(name string) (*netobjects.Space, error) {
		opts := netobjects.Options{
			Name:         name,
			Transports:   []netobjects.Transport{mem},
			PingInterval: time.Hour,
		}
		withObs(&opts)
		return netobjects.New(opts)
	}
	owner, err := mkB("owner")
	if err != nil {
		return err
	}
	defer owner.Close()
	clientB, err := mkB("client")
	if err != nil {
		return err
	}
	defer clientB.Close()
	const nRefs = 32
	refs := make([]*netobjects.Ref, nRefs)
	for i := range refs {
		r, err := owner.Export(&benchService{})
		if err != nil {
			return err
		}
		w, err := r.WireRep()
		if err != nil {
			return err
		}
		if refs[i], err = clientB.Import(w); err != nil {
			return err
		}
	}
	for _, r := range refs {
		r.Release()
	}
	deadline := time.Now().Add(10 * time.Second)
	for owner.Exports().Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	st := clientB.Stats()
	fmt.Printf("  clean batching: %d cleans delivered via %d batched exchanges\n",
		st.CleanSent, st.CleanBatches)
	return nil
}

// --- T4 ------------------------------------------------------------------

func runT4() error {
	fmt.Println("T4: model checking the collector (safety and liveness)")
	budget := 2
	if *quick {
		budget = 1
	}
	start := time.Now()
	cfg := refmodel.NewConfig(3, []refmodel.Proc{0}, budget)
	res := refmodel.Explore(cfg, refmodel.ExploreOptions{CheckInvariants: true, CheckMeasure: true})
	if res.Violation != nil {
		return fmt.Errorf("invariant violation: %v", res.Violation.Err)
	}
	fmt.Printf("  Birrell machine: %d states, %d transitions explored in %v — all invariants hold\n",
		res.States, res.Transitions, time.Since(start).Round(time.Millisecond))

	if trace := refmodel.FindNaiveRace(3, 1, 0); trace != nil {
		fmt.Printf("  naive RC baseline: premature free in %d steps: %s\n",
			len(trace), strings.Join(trace, " → "))
	} else {
		return fmt.Errorf("naive race not found")
	}
	states, violation, _ := refmodel.FExplore(refmodel.NewFConfig(3, []refmodel.Proc{0}, budget), 0)
	if violation != nil {
		return fmt.Errorf("fifo variant violation: %v", violation)
	}
	fmt.Printf("  FIFO variant: %d states — safety holds\n", states)
	return nil
}

// --- T5 ------------------------------------------------------------------

func runT5() error {
	fmt.Println("T5: protocol variant ablation (messages / blocking per scenario)")
	rows, err := refmodel.CompareVariants()
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s %-16s %9s %9s\n", "variant", "scenario", "messages", "blocking")
	for _, r := range rows {
		fmt.Printf("  %-14s %-16s %9d %9d\n", r.Variant, r.Scenario, r.Messages, r.BlockingEvents)
	}
	fmt.Println("shape check: fifo saves the clean ack and all blocking; owner optimisations")
	fmt.Println("remove the dirty/copy-ack pair on legs that touch the owner.")

	// Related protocols (measured on their executable machines): the
	// forward-and-drop scenario.
	prows, err := refmodel.CompareProtocols()
	if err != nil {
		return err
	}
	fmt.Println("\nrelated protocols (forward-and-drop, measured on the machines):")
	fmt.Printf("  %-16s %9s %18s\n", "protocol", "messages", "owner round trips")
	for _, r := range prows {
		fmt.Printf("  %-16s %9d %18d\n", r.Protocol, r.Messages, r.OwnerRoundTrips)
	}
	return runT5Live()
}

// runT5Live measures the FIFO variant in the runtime itself: a call whose
// argument is a fresh third-party reference, on a transport with injected
// latency, so the dirty round trip is visible. The classic variant pays
// it before the method; the FIFO variant overlaps it with execution.
func runT5Live() error {
	fmt.Println("\nT5 (live runtime): third-party call with a 10ms method body,")
	fmt.Println("3ms injected per message leg; the argument is a fresh reference the")
	fmt.Println("receiver must register with a third space")
	n := iters(30)
	for _, variant := range []netobjects.CollectorVariant{netobjects.VariantBirrell, netobjects.VariantFIFO} {
		mem := netobjects.NewMem()
		mem.Latency = 3 * time.Millisecond
		var spaces []*netobjects.Space
		mk := func(name string) (*netobjects.Space, error) {
			opts := netobjects.Options{
				Name:         name,
				Transports:   []netobjects.Transport{mem},
				PingInterval: time.Hour,
				Variant:      variant,
			}
			withObs(&opts)
			sp, err := netobjects.New(opts)
			if err == nil {
				spaces = append(spaces, sp)
			}
			return sp, err
		}
		a, err := mk("A")
		if err != nil {
			return err
		}
		b, err := mk("B")
		if err != nil {
			return err
		}
		c, err := mk("C")
		if err != nil {
			return err
		}
		relay, err := b.Export(&benchService{})
		if err != nil {
			return err
		}
		w, _ := relay.WireRep()
		relayAtA, err := a.Import(w)
		if err != nil {
			return err
		}
		med, err := measure(n, func() error {
			obj := &benchService{}
			ref, err := c.Export(obj)
			if err != nil {
				return err
			}
			cw, err := ref.WireRep()
			if err != nil {
				return err
			}
			refAtA, err := a.Import(cw)
			if err != nil {
				return err
			}
			_, err = relayAtA.Call("TakeRefSlow", refAtA)
			return err
		})
		for i := len(spaces) - 1; i >= 0; i-- {
			_ = spaces[i].Close()
		}
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s median call latency: %v\n", variant, med)
	}
	fmt.Println("shape check: fifo should save roughly one dirty round trip per fresh reference.")
	return nil
}

// --- T6 ------------------------------------------------------------------

func runT6() error {
	fmt.Println("T6: fault tolerance")
	mem := netobjects.NewMem()
	mk := func(name string, opt func(*netobjects.Options)) (*netobjects.Space, error) {
		opts := netobjects.Options{
			Name:         name,
			Transports:   []netobjects.Transport{mem},
			PingInterval: time.Hour,
			CallTimeout:  2 * time.Second,
		}
		if opt != nil {
			opt(&opts)
		}
		withObs(&opts)
		return netobjects.New(opts)
	}

	// (a) Client crash: reclaimed by pings.
	owner, err := mk("owner", func(o *netobjects.Options) {
		o.PingInterval = 50 * time.Millisecond
		o.PingTimeout = 100 * time.Millisecond
		o.PingMaxFailures = 2
	})
	if err != nil {
		return err
	}
	defer owner.Close()
	doomed, err := mk("doomed", nil)
	if err != nil {
		return err
	}
	ref, err := owner.Export(&benchService{})
	if err != nil {
		return err
	}
	w, _ := ref.WireRep()
	if _, err := doomed.Import(w); err != nil {
		return err
	}
	doomed.Abort()
	start := time.Now()
	for owner.Exports().Len() > 0 && time.Since(start) < 10*time.Second {
		time.Sleep(5 * time.Millisecond)
	}
	if owner.Exports().Len() != 0 {
		return fmt.Errorf("dead client never reclaimed")
	}
	fmt.Printf("  client crash -> reclaimed by pings in %v (interval 50ms, 2 failures)\n",
		time.Since(start).Round(time.Millisecond))

	// (b) Dirty call failure: import fails cleanly, strong clean queued.
	o2, err := mk("owner2", nil)
	if err != nil {
		return err
	}
	defer o2.Close()
	c2, err := mk("client2", func(o *netobjects.Options) {
		o.CallTimeout = 300 * time.Millisecond
		o.CleanBackoff = 10 * time.Millisecond
		o.CleanMaxAttempts = 20
	})
	if err != nil {
		return err
	}
	defer c2.Close()
	ref2, err := o2.Export(&benchService{})
	if err != nil {
		return err
	}
	w2, _ := ref2.WireRep()
	addr := strings.TrimPrefix(o2.Endpoints()[0], "inmem:")
	mem.SetUnreachable(addr, true)
	start = time.Now()
	_, impErr := c2.Import(w2)
	if impErr == nil {
		return fmt.Errorf("import through a partition succeeded")
	}
	fmt.Printf("  dirty call through partition -> failed cleanly in %v (no surrogate, strong clean queued)\n",
		time.Since(start).Round(time.Microsecond))

	// (c) Clean call retry: the partition heals and the queued clean
	// (retried by the cleaning daemon) eventually reaches the owner.
	mem.SetUnreachable(addr, false)
	if _, err := c2.Import(w2); err != nil {
		return fmt.Errorf("import after heal: %w", err)
	}
	mem.SetUnreachable(addr, true)
	surrogate, _ := c2.Import(w2)
	surrogate.Release()
	time.Sleep(50 * time.Millisecond) // first clean attempts fail
	mem.SetUnreachable(addr, false)
	start = time.Now()
	for o2.Exports().Len() > 0 && time.Since(start) < 10*time.Second {
		time.Sleep(5 * time.Millisecond)
	}
	if o2.Exports().Len() != 0 {
		return fmt.Errorf("retried clean never landed")
	}
	fmt.Printf("  clean call retried across partition -> owner reclaimed %v after heal\n",
		time.Since(start).Round(time.Microsecond))

	// (d) Lease-based liveness (the RMI-style alternative): a crashed
	// client expires after one TTL of silence, with no owner-to-client
	// traffic at all.
	lo, err := mk("lease-owner", func(o *netobjects.Options) {
		o.Liveness = netobjects.LivenessLease
		o.LeaseTTL = 60 * time.Millisecond
	})
	if err != nil {
		return err
	}
	defer lo.Close()
	lc, err := mk("lease-client", func(o *netobjects.Options) {
		o.Liveness = netobjects.LivenessLease
		o.LeaseTTL = 60 * time.Millisecond
	})
	if err != nil {
		return err
	}
	lref, err := lo.Export(&benchService{})
	if err != nil {
		return err
	}
	lw, _ := lref.WireRep()
	if _, err := lc.Import(lw); err != nil {
		return err
	}
	lc.Abort()
	start = time.Now()
	for lo.Exports().Len() > 0 && time.Since(start) < 10*time.Second {
		time.Sleep(2 * time.Millisecond)
	}
	if lo.Exports().Len() != 0 {
		return fmt.Errorf("lease expiry never reclaimed")
	}
	fmt.Printf("  lease mode: crashed client expired in %v (ttl 60ms, zero owner->client messages)\n",
		time.Since(start).Round(time.Millisecond))
	return nil
}

// --- E1 ------------------------------------------------------------------

// runE1 measures concurrent-caller fan-out over loopback TCP: a client
// that just reached a peer sprays N goroutines × K calls at it (a burst)
// on the shared multiplexed session, comparing the session writer with
// batching off against a small BatchWindow (Options.BatchWindow), which
// lets the writer coalesce bursts of small call frames into one batch
// frame. Each burst starts from a fresh client so connection
// establishment is part of the work; "dials" counts the connections the
// client opened per burst (pool misses, including the one the import's
// dirty call makes) and should stay at ~1 per peer regardless of fan-out.
//
// (The checkout-vs-mux A/B this experiment originally ran is retired with
// the checkout discipline itself; its final numbers are frozen in
// EXPERIMENTS.md.)
func runE1() error {
	fmt.Println("E1: concurrent-caller fan-out over loopback TCP (burst of 8 calls/caller)")
	const burst = 8 // calls per caller per burst; bursty enough to coalesce
	rounds := iters(30)
	payload1k := bytes.Repeat([]byte{'x'}, 1024)
	type shape struct {
		name string
		call func(r *netobjects.Ref) error
	}
	shapes := []shape{
		{"null", func(r *netobjects.Ref) error { _, err := r.Call("Null"); return err }},
		{"1KB bytes", func(r *netobjects.Ref) error { _, err := r.Call("Bytes", payload1k); return err }},
	}
	fanouts := []int{1, 8, 64}

	runCell := func(batchWindow time.Duration, s shape, n int) (rate float64, mean time.Duration, dials float64, err error) {
		tr := netobjects.NewTCP()
		mk := func(name string, m *netobjects.Metrics) (*netobjects.Space, error) {
			return netobjects.New(netobjects.Options{
				Name:         name,
				Transports:   []netobjects.Transport{tr},
				PingInterval: time.Hour,
				BatchWindow:  batchWindow,
				Metrics:      m,
			})
		}
		owner, err := mk("e1-owner", nil)
		if err != nil {
			return 0, 0, 0, err
		}
		defer owner.Close()
		// Each round is one burst from a fresh client against a freshly
		// exported object (the owner reclaims an export once its last
		// client cleans it); round 0 warms process-level caches and is
		// discarded.
		samples := make([]time.Duration, 0, rounds)
		var dialSum uint64
		for r := 0; r <= rounds; r++ {
			oref, err := owner.Export(&benchService{})
			if err != nil {
				return 0, 0, 0, err
			}
			w, err := oref.WireRep()
			if err != nil {
				return 0, 0, 0, err
			}
			cm := netobjects.NewMetrics()
			client, err := mk("e1-client", cm)
			if err != nil {
				return 0, 0, 0, err
			}
			ref, err := client.Import(w)
			if err != nil {
				client.Close()
				return 0, 0, 0, err
			}
			errc := make(chan error, n)
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < burst; i++ {
						if err := s.call(ref); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			client.Close()
			select {
			case err := <-errc:
				return 0, 0, 0, err
			default:
			}
			if r == 0 {
				continue
			}
			samples = append(samples, elapsed)
			dialSum += cm.PoolMisses.Load()
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		med := samples[len(samples)/2]
		total := n * burst
		rate = float64(total) / med.Seconds()
		mean = med * time.Duration(n) / time.Duration(total)
		return rate, mean, float64(dialSum) / float64(len(samples)), nil
	}

	fmt.Printf("%-10s %-10s %8s %14s %12s %8s\n",
		"batching", "payload", "callers", "calls/sec", "mean lat", "dials")
	at64 := map[string][2]float64{} // shape name -> [off, on] rate at 64 callers
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{{"off", 0}, {"100µs", 100 * time.Microsecond}} {
		for _, s := range shapes {
			for _, n := range fanouts {
				rate, mean, dials, err := runCell(mode.window, s, n)
				if err != nil {
					return err
				}
				fmt.Printf("%-10s %-10s %8d %14.0f %12s %8.0f\n",
					mode.name, s.name, n, rate, mean.Round(time.Microsecond), dials)
				if n == 64 {
					v := at64[s.name]
					if mode.window == 0 {
						v[0] = rate
					} else {
						v[1] = rate
					}
					at64[s.name] = v
				}
			}
		}
	}
	for _, s := range shapes {
		if v := at64[s.name]; v[0] > 0 {
			fmt.Printf("64-caller batching effect (%s): window on is %.2fx window off\n", s.name, v[1]/v[0])
		}
	}
	fmt.Println("shape check: dials stay at ~1 per peer at every fan-out; batching should help")
	fmt.Println("(or at worst not hurt) high fan-out small-call bursts, and never help 1 caller.")
	return nil
}

// --- chaos ---------------------------------------------------------------

// runChaos runs the fault-injection soak (internal/chaos) and prints the
// report; invariant violations are an error.
func runChaos(profile, trans string, seed uint64, spaces, ops int) error {
	fmt.Printf("chaos soak: profile=%s transport=%s seed=%d spaces=%d ops=%d\n", profile, trans, seed, spaces, ops)
	cfg := chaos.SoakConfig{
		Spaces:    spaces,
		Ops:       ops,
		Seed:      seed,
		Profile:   profile,
		Transport: trans,
		Metrics:   obsMetrics,
	}
	if obsRing != nil {
		cfg.Tracer = obsRing
	}
	rep, err := chaos.RunSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Failed() {
		for _, v := range rep.Violations {
			fmt.Printf("  SAFETY: %s\n", v)
		}
		for _, l := range rep.Leaks {
			fmt.Printf("  LEAK: %s\n", l)
		}
		for _, l := range rep.TableLeaks {
			fmt.Printf("  TABLE: %s\n", l)
		}
		return fmt.Errorf("invariants violated (profile=%s seed=%d: rerun with the same flags to reproduce)", profile, seed)
	}
	fmt.Println("invariants hold: no premature collection, no leaks, tables empty after heal.")
	return nil
}

// --- E2 ------------------------------------------------------------------

// runE2 measures head-of-line blocking on a multiplexed session: 64
// concurrent null callers share one loopback-TCP link with a single 8MB
// argument in flight. With flow control (the default) the bulk argument
// travels as credit-gated chunks and the writer's priority lane lets the
// small calls overtake between chunks; with DisableFlow the 8MB argument
// is one frame and every null call queued behind it waits the whole
// write out. Each cell runs the null storm for the lifetime of one bulk
// call (the baseline for a matching fixed window with no bulk at all);
// the acceptance bound is flow-on p99 within 3x of the no-bulk baseline.
// "stalls" is the client's writer-stall count (data queued, credit
// exhausted) from netobj_flow_writer_stalls_total.
func runE2() error {
	fmt.Println("E2: null-call tail latency beside one 8MB-argument call (64 callers, loopback TCP)")
	const callers = 64
	bulk := bytes.Repeat([]byte{'B'}, 8<<20)

	type cell struct {
		p50, p99 time.Duration
		nulls    int
		bulkTime time.Duration
		stalls   uint64
	}
	// window is how long the baseline cell's storm runs; the bulk cells
	// run for exactly one 8MB call instead.
	window := 2 * time.Second
	if *quick {
		window = 500 * time.Millisecond
	}
	runCell := func(disableFlow, withBulk, ownLink bool) (cell, error) {
		tr := netobjects.NewTCP()
		cm := netobjects.NewMetrics()
		mk := func(name string, m *netobjects.Metrics) (*netobjects.Space, error) {
			return netobjects.New(netobjects.Options{
				Name:         name,
				Transports:   []netobjects.Transport{tr},
				PingInterval: time.Hour,
				DisableFlow:  disableFlow,
				Metrics:      m,
			})
		}
		owner, err := mk("e2-owner", nil)
		if err != nil {
			return cell{}, err
		}
		defer owner.Close()
		client, err := mk("e2-client", cm)
		if err != nil {
			return cell{}, err
		}
		defer client.Close()
		oref, err := owner.Export(&benchService{})
		if err != nil {
			return cell{}, err
		}
		w, err := oref.WireRep()
		if err != nil {
			return cell{}, err
		}
		ref, err := client.Import(w)
		if err != nil {
			return cell{}, err
		}
		if _, err := ref.Call("Null"); err != nil { // warm the session + flow hello
			return cell{}, err
		}
		// With ownLink the bulk call leaves from a second client space:
		// same CPU churn, its own session — a control that isolates the
		// shared-writer effect from plain compute contention.
		bulkRef := ref
		if ownLink {
			client2, err := mk("e2-client2", nil)
			if err != nil {
				return cell{}, err
			}
			defer client2.Close()
			if bulkRef, err = client2.Import(w); err != nil {
				return cell{}, err
			}
			if _, err := bulkRef.Call("Null"); err != nil {
				return cell{}, err
			}
		}

		stop := make(chan struct{})
		lats := make([][]time.Duration, callers)
		errc := make(chan error, callers+1)
		var wg sync.WaitGroup
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var ls []time.Duration
				for {
					select {
					case <-stop:
						lats[g] = ls
						return
					default:
					}
					t0 := time.Now()
					if _, err := ref.Call("Null"); err != nil {
						errc <- err
						return
					}
					ls = append(ls, time.Since(t0))
				}
			}(g)
		}
		// Give the storm a beat to reach steady state, then start the
		// clock: the bulk call's lifetime is the measurement window.
		time.Sleep(100 * time.Millisecond)
		var c cell
		t0 := time.Now()
		if withBulk {
			if _, err := bulkRef.Call("Bytes", bulk); err != nil {
				errc <- err
			}
		} else {
			time.Sleep(window)
		}
		c.bulkTime = time.Since(t0)
		close(stop)
		wg.Wait()
		select {
		case err := <-errc:
			return cell{}, err
		default:
		}
		var all []time.Duration
		for _, ls := range lats {
			all = append(all, ls...)
		}
		if len(all) == 0 {
			return cell{}, fmt.Errorf("no null calls completed")
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) time.Duration { return all[min(int(float64(len(all))*p), len(all)-1)] }
		c.p50, c.p99, c.nulls = q(0.50), q(0.99), len(all)
		c.stalls = cm.FlowWriterStalls.Load()
		return c, nil
	}

	fmt.Printf("%-18s %12s %12s %8s %12s %8s\n", "mode", "null p50", "null p99", "nulls", "8MB time", "stalls")
	var base, ctl, on cell
	for _, m := range []struct {
		name        string
		disableFlow bool
		withBulk    bool
		ownLink     bool
	}{
		{"no-bulk baseline", false, false, false},
		{"bulk on own link", false, true, true},
		{"flow on + bulk", false, true, false},
		{"flow off + bulk", true, true, false},
	} {
		c, err := runCell(m.disableFlow, m.withBulk, m.ownLink)
		if err != nil {
			return err
		}
		bt := "-"
		if m.withBulk {
			bt = c.bulkTime.Round(time.Millisecond).String()
		}
		fmt.Printf("%-18s %12s %12s %8d %12s %8d\n", m.name,
			c.p50.Round(time.Microsecond), c.p99.Round(time.Microsecond), c.nulls, bt, c.stalls)
		switch m.name {
		case "no-bulk baseline":
			base = c
		case "bulk on own link":
			ctl = c
		case "flow on + bulk":
			on = c
		}
	}
	fmt.Printf("flow-on p99 is %.1fx the no-bulk baseline (acceptance bound: <= 3x)\n",
		float64(on.p99)/float64(base.p99))
	fmt.Printf("flow-on p99 is %.1fx the own-link control (the shared-session penalty flow control is answerable for;\n"+
		"the rest of the tail is the 8MB call's compute churn, which hits every goroutine on a small CPU count)\n",
		float64(on.p99)/float64(ctl.p99))
	fmt.Println("shape check: flow-off p99 absorbs the whole 8MB wire time; flow-on p99 tracks the own-link control.")
	return nil
}

// --- E3 ------------------------------------------------------------------

// e3Node is one link of a server-side chain: Next hops toward the tail,
// Name reads the current node.
type e3Node struct {
	next *netobjects.Ref
	name string
}

func (n *e3Node) Next() (*netobjects.Ref, error) {
	if n.next == nil {
		return nil, fmt.Errorf("end of chain")
	}
	return n.next, nil
}

func (n *e3Node) Name() (string, error) { return n.name, nil }

// e3Sink absorbs one-way notifications.
type e3Sink struct {
	mu sync.Mutex
	n  int64
}

func (s *e3Sink) Note(d int64) error {
	s.mu.Lock()
	s.n += d
	s.mu.Unlock()
	return nil
}

func (s *e3Sink) Total() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n, nil
}

// runE3 measures promise pipelining against sequential invocation on a
// K-deep dependent chain with a simulated 25ms round trip (in-memory
// transport, 12.5ms per message leg). Sequentially, each hop awaits its
// result ref before issuing the next call, so a K-hop walk plus the
// final read costs (K+1) round trips — plus the dirty registration of
// every intermediate surrogate. Pipelined, every hop targets the
// previous call's promise and the owner chains locally, so the whole
// walk streams out back-to-back and costs about one round trip
// regardless of K. The acceptance bound is >= 3x at K=8. The second
// table measures one-way notification: N fire-and-forget calls followed
// by one ordered read, against N sequential two-way calls.
func runE3() error {
	fmt.Println("E3: dependent-chain latency, pipelined vs sequential (inmem, 25ms simulated RTT, median)")
	rtt := 25 * time.Millisecond
	mem := netobjects.NewMem()
	mem.Latency = rtt / 2
	mk := func(name string) (*netobjects.Space, error) {
		opts := netobjects.Options{
			Name:         name,
			Transports:   []netobjects.Transport{mem},
			PingInterval: time.Hour,
			CallTimeout:  30 * time.Second,
		}
		withObs(&opts)
		return netobjects.New(opts)
	}
	owner, err := mk("e3-owner")
	if err != nil {
		return err
	}
	defer owner.Close()
	client, err := mk("e3-client")
	if err != nil {
		return err
	}
	defer client.Close()

	// Export a 16-deep chain ending in "tail"; each K walks its suffix.
	const maxK = 16
	tail := &e3Node{name: "tail"}
	tailRef, err := owner.Export(tail)
	if err != nil {
		return err
	}
	heads := map[int]*netobjects.Ref{0: tailRef}
	prev := tailRef
	for i := 1; i <= maxK; i++ {
		ref, err := owner.Export(&e3Node{next: prev, name: fmt.Sprintf("node-%d", i)})
		if err != nil {
			return err
		}
		heads[i] = ref
		prev = ref
	}
	importHead := func(k int) (*netobjects.Ref, error) {
		w, err := heads[k].WireRep()
		if err != nil {
			return nil, err
		}
		return client.Import(w)
	}

	ctx := context.Background()
	n := iters(20)
	fmt.Printf("%6s %14s %14s %10s %12s\n", "K", "sequential", "pipelined", "speedup", "ideal (RTTs)")
	var speedup8 float64
	for _, k := range []int{2, 4, 8} {
		head, err := importHead(k)
		if err != nil {
			return err
		}
		seq, err := measure(n, func() error {
			cur := head
			for i := 0; i < k; i++ {
				res, err := cur.Call("Next")
				if err != nil {
					return err
				}
				cur = res[0].(*netobjects.Ref)
			}
			res, err := cur.Call("Name")
			if err != nil {
				return err
			}
			if res[0] != "tail" {
				return fmt.Errorf("sequential walk ended at %v", res[0])
			}
			return nil
		})
		if err != nil {
			return err
		}
		piped, err := measure(n, func() error {
			p := head.PipeCall(ctx, "Next")
			for i := 1; i < k; i++ {
				p = p.PipeCall(ctx, "Next")
			}
			res, err := p.PipeCall(ctx, "Name").Await(ctx)
			if err != nil {
				return err
			}
			if res[0] != "tail" {
				return fmt.Errorf("pipelined walk ended at %v", res[0])
			}
			return nil
		})
		if err != nil {
			return err
		}
		sp := float64(seq) / float64(piped)
		if k == 8 {
			speedup8 = sp
		}
		fmt.Printf("%6d %14s %14s %9.1fx %6.1f vs %.1f\n", k,
			seq.Round(time.Millisecond), piped.Round(time.Millisecond), sp,
			float64(seq)/float64(rtt), float64(piped)/float64(rtt))
	}
	fmt.Printf("K=8 speedup %.1fx (acceptance bound: >= 3x)\n", speedup8)

	// One-way notification: N notes then one ordered read, vs N two-way
	// calls. The one-way batch rides out back-to-back; the closing Total
	// is fenced behind them, so the whole burst costs about one round
	// trip.
	const notes = 16
	sinkRef, err := owner.Export(&e3Sink{})
	if err != nil {
		return err
	}
	w, err := sinkRef.WireRep()
	if err != nil {
		return err
	}
	sink, err := client.Import(w)
	if err != nil {
		return err
	}
	twoWay, err := measure(n, func() error {
		for i := 0; i < notes; i++ {
			if _, err := sink.Call("Note", int64(1)); err != nil {
				return err
			}
		}
		_, err := sink.Call("Total")
		return err
	})
	if err != nil {
		return err
	}
	oneWay, err := measure(n, func() error {
		for i := 0; i < notes; i++ {
			if err := sink.OneWay("Note", int64(1)); err != nil {
				return err
			}
		}
		// The ordered read must ride the pipeline barrier: a plain Call
		// does not fence behind one-ways, only PipeCall carries Barrier.
		_, err := sink.PipeCall(ctx, "Total").Await(ctx)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d notifications + 1 read: two-way %v, one-way %v (%.1fx)\n",
		notes, twoWay.Round(time.Millisecond), oneWay.Round(time.Millisecond),
		float64(twoWay)/float64(oneWay))
	if speedup8 < 3 {
		return fmt.Errorf("E3 acceptance failed: K=8 speedup %.1fx < 3x", speedup8)
	}
	return nil
}

// --- E4 ------------------------------------------------------------------

// e4Obj is one of the million exported objects. The field keeps instances
// distinct: zero-size values share one address and would collide in the
// export table's identity map.
type e4Obj struct{ id int64 }

func (o *e4Obj) Null() error { return nil }

// runE4 measures the striped object tables at scale: one million exports
// (64k with -quick) under 256 concurrent callers, with the stripe count as
// the A/B knob — TableShards=1 is the retired single-mutex table. The
// first cell isolates the table itself: the serve path's per-call table
// sequence (Lookup of the target, transient Pin, Unpin) against the raw
// export table, 256 goroutines spread across the full index space. With
// one stripe every acquisition contends and the mutex degrades to queued
// handoffs; striped, concurrent callers land on distinct stripes and take
// the uncontended fast path. The second cell runs the whole stack — 8
// client spaces x 32 goroutines calling Null() on refs spread across the
// million objects, over the in-memory transport — reporting calls/sec and
// p99 so the table's share of a real call is visible next to the
// marshaling, dispatch and transport costs around it.
//
// The acceptance bound (>= 2x table ops/sec at 1M objects / 256 callers)
// is checked on the isolated cell, and only where contention can exist:
// on a single-CPU host the lock holder is never *running* concurrently
// with a contender, so TryLock virtually never fails (watch the reported
// contention counters read ~0) and the A/B degenerates to per-op overhead
// plus scheduler noise. The bound is enforced when NumCPU > 1 and
// reported informationally otherwise.
func runE4() error {
	nObjs := 1 << 20
	if *quick {
		nObjs = 1 << 16
	}
	const callers = 256
	fmt.Printf("E4: object tables at %d exports, %d concurrent callers (TableShards A/B)\n", nObjs, callers)
	fmt.Printf("host: NumCPU=%d GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))

	defaultShards := objtable.NewExports().ShardCount()

	// --- raw table cell ---
	tableOps := iters(4000) // per goroutine
	rawCell := func(shards int) (opsPerSec float64, contention uint64, fill time.Duration, err error) {
		t := objtable.NewExportsSharded(shards)
		t0 := time.Now()
		idxs := make([]uint64, nObjs)
		for i := range idxs {
			idx, err := t.Export(&e4Obj{id: int64(i)}, nil)
			if err != nil {
				return 0, 0, 0, err
			}
			// A dirty client keeps Unpin from withdrawing the entry,
			// exactly as a live importer does on the serve path.
			if err := t.Dirty(idx, wire.SpaceID(1), 1, nil); err != nil {
				return 0, 0, 0, err
			}
			idxs[i] = idx
		}
		fill = time.Since(t0)
		errc := make(chan error, callers)
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				pos := g * 7919 // spread the goroutines across the index space
				for i := 0; i < tableOps; i++ {
					idx := idxs[(pos+i*613)%nObjs]
					if _, ok := t.Lookup(idx); !ok {
						errc <- fmt.Errorf("entry %d vanished", idx)
						return
					}
					if err := t.Pin(idx); err != nil {
						errc <- err
						return
					}
					t.Unpin(idx)
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return 0, 0, 0, err
		default:
		}
		return float64(callers*tableOps) / elapsed.Seconds(), t.Contention(), fill, nil
	}

	fmt.Printf("raw table, %d x (Lookup+Pin+Unpin) per goroutine:\n", tableOps)
	rates := map[int]float64{}
	for _, shards := range []int{1, defaultShards} {
		rate, cont, fill, err := rawCell(shards)
		if err != nil {
			return err
		}
		rates[shards] = rate
		fmt.Printf("  shards=%-4d %14.0f table ops/sec   contention %-10d (fill %v)\n",
			shards, rate, cont, fill.Round(time.Millisecond))
	}
	tableSpeedup := rates[defaultShards] / rates[1]
	fmt.Printf("  sharding speedup: %.2fx\n", tableSpeedup)

	// --- full stack cell ---
	const (
		clientSpaces = 8
		perClient    = 32 // callers per client space
	)
	importsPer := 128
	callsPer := iters(500) // per caller
	stackCell := func(tableShards int) (rate float64, p99 time.Duration, contention uint64, err error) {
		tr := netobjects.NewMem()
		mk := func(name string) (*netobjects.Space, error) {
			opts := netobjects.Options{
				Name:         name,
				Transports:   []netobjects.Transport{tr},
				PingInterval: time.Hour,
				CallTimeout:  30 * time.Second,
				TableShards:  tableShards,
			}
			withObs(&opts)
			return netobjects.New(opts)
		}
		owner, err := mk("e4-owner")
		if err != nil {
			return 0, 0, 0, err
		}
		defer owner.Close()
		refs := make([]*netobjects.Ref, nObjs)
		for i := range refs {
			if refs[i], err = owner.Export(&e4Obj{id: int64(i)}); err != nil {
				return 0, 0, 0, err
			}
		}
		// Each client imports its own slice of refs, spread evenly across
		// the index space so the callers exercise every stripe.
		stride := nObjs / (clientSpaces * importsPer)
		var clients []*netobjects.Space
		defer func() {
			for _, c := range clients {
				_ = c.Close()
			}
		}()
		imported := make([][]*netobjects.Ref, clientSpaces)
		for c := 0; c < clientSpaces; c++ {
			cl, err := mk(fmt.Sprintf("e4-client-%d", c))
			if err != nil {
				return 0, 0, 0, err
			}
			clients = append(clients, cl)
			for k := 0; k < importsPer; k++ {
				w, err := refs[(c*importsPer+k)*stride].WireRep()
				if err != nil {
					return 0, 0, 0, err
				}
				r, err := cl.Import(w)
				if err != nil {
					return 0, 0, 0, err
				}
				imported[c] = append(imported[c], r)
			}
		}
		lats := make([][]time.Duration, clientSpaces*perClient)
		errc := make(chan error, clientSpaces*perClient)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clientSpaces; c++ {
			for g := 0; g < perClient; g++ {
				wg.Add(1)
				go func(c, g int) {
					defer wg.Done()
					mine := imported[c]
					ls := make([]time.Duration, 0, callsPer)
					for i := 0; i < callsPer; i++ {
						t0 := time.Now()
						if _, err := mine[(g+i)%len(mine)].Call("Null"); err != nil {
							errc <- err
							return
						}
						ls = append(ls, time.Since(t0))
					}
					lats[c*perClient+g] = ls
				}(c, g)
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return 0, 0, 0, err
		default:
		}
		var all []time.Duration
		for _, ls := range lats {
			all = append(all, ls...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p99 = all[min(int(float64(len(all))*0.99), len(all)-1)]
		return float64(len(all)) / elapsed.Seconds(), p99, owner.Exports().Contention(), nil
	}

	fmt.Printf("full stack (inmem, %d client spaces x %d callers, %d calls each):\n",
		clientSpaces, perClient, callsPer)
	fmt.Printf("  %-12s %14s %12s %16s\n", "shards", "calls/sec", "p99", "owner contention")
	stackRates := map[int]float64{}
	for _, shards := range []int{1, defaultShards} {
		rate, p99, cont, err := stackCell(shards)
		if err != nil {
			return err
		}
		stackRates[shards] = rate
		fmt.Printf("  %-12d %14.0f %12s %16d\n", shards, rate, p99.Round(time.Microsecond), cont)
	}
	fmt.Printf("  full-stack speedup: %.2fx\n", stackRates[defaultShards]/stackRates[1])
	fmt.Println("shape check: striping relieves the single-mutex queue on the table itself;")
	fmt.Println("end to end the win is bounded by the table's share of a whole call.")
	if tableSpeedup < 2 {
		if runtime.NumCPU() > 1 {
			return fmt.Errorf("E4 acceptance failed: table speedup %.2fx < 2x at %d objects / %d callers",
				tableSpeedup, nObjs, callers)
		}
		fmt.Println("single-CPU host: goroutines never overlap, the shard locks never contend")
		fmt.Println("(counters above), and the >= 2x bound is unobservable; it is enforced on")
		fmt.Println("multicore hosts only.")
	}
	return nil
}

// runE5 measures the replicated agent tier (internal/registry) from a
// client's seat. Cell 1 is lookup latency with the leased cache on and
// off against a 3-replica cluster: the cached path is a map hit under the
// resolver's mutex, the uncached path is a full LookupV RPC at a replica,
// so the gap is what the lease protocol buys on every read inside the
// TTL. Cell 2 is the failover blip: a client reading through its home
// replica and a client writing through the sequencer, with that replica
// killed mid-stream — the blip is the gap from the crash to the next
// successful operation, which covers failure detection (ProbeFailures
// consecutive probes), the election, and the client's own retry. The
// acceptance shape is blip ~ detection window (ProbeInterval x
// ProbeFailures + one retry), not multiples of it.
func runE5() error {
	const (
		replicas      = 3
		probeInterval = 50 * time.Millisecond
		probeFailures = 2
	)
	detection := time.Duration(probeFailures) * probeInterval
	lookups := iters(20000)

	fmt.Printf("E5: registry tier, %d replicas (inmem), lease-cached vs uncached lookups, failover blip\n", replicas)
	fmt.Printf("membership: probe every %v, dead after %d misses (detection window %v)\n",
		probeInterval, probeFailures, detection)

	// One cluster serves the whole experiment.
	tr := netobjects.NewMem()
	addrs := make([]string, replicas)
	peers := make([]string, replicas)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("e5-reg%d", i)
		peers[i] = wire.JoinEndpoint("inmem", addrs[i])
	}
	mkSpace := func(name, addr string, auto bool) (*netobjects.Space, error) {
		opts := netobjects.Options{
			Name:            name,
			Transports:      []netobjects.Transport{tr},
			ListenEndpoints: []string{wire.JoinEndpoint("inmem", addr)},
			Registry:        pickle.NewRegistry(),
			AutoRelease:     auto,
			CallTimeout:     5 * time.Second,
			PingInterval:    time.Hour,
		}
		withObs(&opts)
		return netobjects.New(opts)
	}
	regOpts := func(self int) registry.Options {
		return registry.Options{
			Peers:         peers,
			Self:          self,
			ProbeInterval: probeInterval,
			ProbeTimeout:  3 * probeInterval,
			ProbeFailures: probeFailures,
		}
	}
	sps := make([]*netobjects.Space, replicas)
	reps := make([]*registry.Replica, replicas)
	start := func(i int) error {
		sp, err := mkSpace(fmt.Sprintf("e5-replica%d", i), addrs[i], true)
		if err != nil {
			return err
		}
		rep, err := registry.Serve(sp, regOpts(i))
		if err != nil {
			_ = sp.Close()
			return err
		}
		sps[i], reps[i] = sp, rep
		return nil
	}
	for i := 0; i < replicas; i++ {
		if err := start(i); err != nil {
			return err
		}
	}
	defer func() {
		for i := range sps {
			if sps[i] != nil {
				reps[i].Close()
				_ = sps[i].Close()
			}
		}
	}()
	waitLeader := func(want int) error {
		for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
			ok := true
			for _, r := range reps {
				if r == nil {
					continue
				}
				if !r.Ready() || r.Leader() != want {
					ok = false
				}
			}
			if ok {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("replicas never agreed on sequencer %d", want)
	}
	if err := waitLeader(0); err != nil {
		return err
	}

	owner, err := mkSpace("e5-owner", "e5-owner", false)
	if err != nil {
		return err
	}
	defer owner.Close()
	svc, err := owner.Export(&benchService{})
	if err != nil {
		return err
	}
	wres, err := registry.NewResolver(owner, registry.ResolverOptions{Peers: peers})
	if err != nil {
		return err
	}
	defer wres.Close()
	ctx := context.Background()
	if _, err := wres.Bind(ctx, "e5-svc", svc); err != nil {
		return err
	}

	// --- cell 1: lookup latency, cache on vs off ---
	lookupCell := func(name string, disableCache bool) error {
		sp, err := mkSpace("e5-"+name, "e5-"+name, false)
		if err != nil {
			return err
		}
		defer sp.Close()
		res, err := registry.NewResolver(sp, registry.ResolverOptions{
			Peers:        peers,
			LeaseTTL:     time.Minute, // never expires inside the cell
			DisableCache: disableCache,
		})
		if err != nil {
			return err
		}
		defer res.Close()
		if _, _, err := res.Resolve(ctx, "e5-svc"); err != nil { // warm
			return err
		}
		lat := make([]time.Duration, lookups)
		for i := range lat {
			t0 := time.Now()
			if _, _, err := res.Resolve(ctx, "e5-svc"); err != nil {
				return err
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) time.Duration {
			return lat[min(int(float64(len(lat))*p), len(lat)-1)]
		}
		fmt.Printf("  %-14s %12s %12s %12s  (%d lookups)\n",
			name, q(0.50).Round(time.Nanosecond), q(0.99).Round(time.Nanosecond),
			q(0.999).Round(time.Nanosecond), len(lat))
		return nil
	}
	fmt.Printf("lookup latency:\n  %-14s %12s %12s %12s\n", "cache", "p50", "p99", "p99.9")
	if err := lookupCell("leased", false); err != nil {
		return err
	}
	if err := lookupCell("uncached", true); err != nil {
		return err
	}

	// --- cell 2: failover blip ---
	// A reader whose home replica dies, and a writer whose sequencer dies
	// (replica 0 is both here: reads subscribe at the first peer that
	// answers, writes chase the sequencer). The blip is measured from the
	// kill to the first operation that completes after it.
	reader, err := mkSpace("e5-reader", "e5-reader", false)
	if err != nil {
		return err
	}
	defer reader.Close()
	rres, err := registry.NewResolver(reader, registry.ResolverOptions{
		Peers:                peers,
		LeaseTTL:             time.Millisecond, // force every read remote
		DisableInvalidations: true,
	})
	if err != nil {
		return err
	}
	defer rres.Close()

	type blip struct {
		detect time.Duration // kill -> first post-kill success
		worst  time.Duration // largest success-to-success gap
	}
	runBlip := func(op func() error) (blip, error) {
		// Steady stream; kill replica 0 after 100 ops; stream until the
		// ops have clearly recovered, tracking the largest gap.
		var b blip
		var killAt time.Time
		last := time.Now()
		for i := 0; ; i++ {
			if i == 100 {
				reps[0].Close()
				sps[0].Abort()
				sps[0], reps[0] = nil, nil
				killAt = time.Now()
			}
			if err := op(); err != nil {
				if time.Since(killAt) > 20*time.Second {
					return b, fmt.Errorf("no recovery after kill: %w", err)
				}
				continue
			}
			now := time.Now()
			if gap := now.Sub(last); gap > b.worst {
				b.worst = gap
			}
			last = now
			if !killAt.IsZero() {
				if b.detect == 0 {
					b.detect = now.Sub(killAt)
				}
				if now.Sub(killAt) > 2*detection+time.Second {
					return b, nil
				}
			}
		}
	}

	rb, err := runBlip(func() error {
		opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		_, _, err := rres.Resolve(opCtx, "e5-svc")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("reader failover blip (home replica killed): first success %v after kill, worst gap %v\n",
		rb.detect.Round(time.Millisecond), rb.worst.Round(time.Millisecond))

	// Restore replica 0 for the writer cell and let it take the sequencer
	// role back.
	if err := start(0); err != nil {
		return err
	}
	if err := waitLeader(0); err != nil {
		return err
	}
	wb, err := runBlip(func() error {
		opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		_, err := wres.Rebind(opCtx, "e5-svc", svc)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("writer failover blip (sequencer killed): first success %v after kill, worst gap %v\n",
		wb.detect.Round(time.Millisecond), wb.worst.Round(time.Millisecond))
	fmt.Printf("shape check: the reader blip is client-side failover (next peer, no election) and sits\n")
	fmt.Printf("well under the detection window; the writer blip spans detection (%v) plus the\n", detection)
	fmt.Printf("election and the redirect chase, so ~1-3x the window is the expected band.\n")
	if wb.detect > 10*detection+time.Second {
		return fmt.Errorf("E5 acceptance failed: writer blip %v is far beyond the detection window %v",
			wb.detect, detection)
	}
	return nil
}

// runE6 measures what the collector's liveness traffic costs as importers
// multiply, across the three owner/client liveness designs: explicit
// pings (the paper's), aggregated per-peer leases, and session-subsumed
// liveness (healthy mux keepalives stand in for both). Each cell builds
// one owner and N importer spaces all holding the same export, lets the
// daemons run over a fixed window counting explicit liveness exchanges
// (pings + lease renewals; each exchange is one request and one ack), and
// then crashes one importer and times how long the owner takes to drop
// its registration — the control-cost vs reclamation-latency trade the
// designs differ on.
func runE6() error {
	counts := []int{1, 64, 1024}
	window := 4 * time.Second
	if *quick {
		counts = []int{1, 16, 64}
		window = 2 * time.Second
	}
	const (
		pingInterval = 200 * time.Millisecond
		pingFailures = 3
		leaseTTL     = 6 * time.Second // renewed at TTL/3 = 2s
		keepalive    = time.Second
	)
	fmt.Printf("E6: liveness traffic and reclamation latency vs importer count (inmem)\n")
	fmt.Printf("host: NumCPU=%d GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("ping %v x%d failures | lease ttl %v renew every %v | keepalive %v\n\n",
		pingInterval, pingFailures, leaseTTL, leaseTTL/3, keepalive)

	type mode struct {
		name  string
		setup func(o *netobjects.Options)
	}
	modes := []mode{
		{"pings", func(o *netobjects.Options) {
			o.DisableSessionLiveness = true
		}},
		{"leases", func(o *netobjects.Options) {
			o.Liveness = netobjects.LivenessLease
			o.LeaseTTL = leaseTTL
			o.DisableSessionLiveness = true
		}},
		{"session", func(o *netobjects.Options) {
			// Ping fallback underneath, but the healthy keepalive-bearing
			// sessions subsume it while importers live.
		}},
	}

	cell := func(md mode, n int) error {
		tr := netobjects.NewMem()
		m := netobjects.NewMetrics()
		mk := func(name string) (*netobjects.Space, error) {
			opts := netobjects.Options{
				Name:              name,
				Transports:        []netobjects.Transport{tr},
				CallTimeout:       10 * time.Second,
				PingInterval:      pingInterval,
				PingTimeout:       time.Second,
				PingMaxFailures:   pingFailures,
				KeepaliveInterval: keepalive,
				Metrics:           m,
			}
			md.setup(&opts)
			return netobjects.New(opts)
		}
		owner, err := mk("e6-owner")
		if err != nil {
			return err
		}
		defer owner.Close()
		ref, err := owner.Export(&e4Obj{})
		if err != nil {
			return err
		}
		w, err := ref.WireRep()
		if err != nil {
			return err
		}
		clients := make([]*netobjects.Space, n)
		defer func() {
			for _, c := range clients {
				if c != nil {
					_ = c.Close()
				}
			}
		}()
		for i := range clients {
			if clients[i], err = mk(fmt.Sprintf("e6-c%d", i)); err != nil {
				return err
			}
			r, err := clients[i].Import(w)
			if err != nil {
				return err
			}
			// One call establishes the identified mux session the
			// subsumed mode rides on.
			if _, err := r.Call("Null"); err != nil {
				return err
			}
		}
		// Let registration traffic settle out of the window.
		time.Sleep(500 * time.Millisecond)
		before := m.PingsSent.Load() + m.LeasesSent.Load()
		time.Sleep(window)
		exchanges := m.PingsSent.Load() + m.LeasesSent.Load() - before
		rate := float64(exchanges) / window.Seconds()

		// Reclamation: crash the last importer (no parting cleans) and
		// time the owner noticing.
		victim := clients[n-1]
		vid := victim.ID()
		victim.Abort()
		clients[n-1] = nil
		t0 := time.Now()
		reclaim := time.Duration(0)
		for {
			if !owner.Exports().HoldsDirty(w.Index, vid) {
				reclaim = time.Since(t0)
				break
			}
			if time.Since(t0) > 30*time.Second {
				return fmt.Errorf("e6 %s n=%d: crashed importer never reclaimed", md.name, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
		fmt.Printf("  %-8s n=%-5d %10.1f liveness exchanges/sec  (%6.3f /sec/importer)   reclaim %v\n",
			md.name, n, rate, rate/float64(n), reclaim.Round(time.Millisecond))
		return nil
	}

	for _, n := range counts {
		for _, md := range modes {
			if err := cell(md, n); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	fmt.Printf("reading: pings pay per importer per interval forever; aggregated leases pay one renewal\n")
	fmt.Printf("per importer per TTL/3 (and would cover any number of entries per importer); the\n")
	fmt.Printf("subsumed mode pays nothing explicit while sessions stay healthy — its cost rides on\n")
	fmt.Printf("keepalives the transport already sends — and falls back to pings on session loss.\n")
	return nil
}

// --- E7 ------------------------------------------------------------------

// runE7 measures the bulk data plane (internal/distarray): a distributed
// LSD radix sort at 1/2/4/8 workers over the in-memory transport. The
// host space runs on its own metrics set, so its wire traffic is
// separable from the workers': the table's last two columns are the
// host's total bytes on the wire and their share of the data sorted,
// which is the reference-passing claim made measurable — handing the
// workers the staged array each pass is a third-party transfer of every
// partition reference, the host's plans are O(workers x buckets) counts,
// and the shuffle is pure worker-to-worker traffic (exactly passes x
// data bytes, none of it through the host). On a single-vCPU host the
// keys/sec column does not scale with workers — every worker shares one
// CPU — so the acceptance check is on the host-bytes bound, not the
// throughput curve.
func runE7() error {
	keys := int64(240_000)
	if *quick {
		keys = 60_000
	}
	dataBytes := keys * distarray.KeyBytes
	fmt.Printf("E7: distributed radix sort, host-as-coordinator (inmem, %d keys, %d bytes, %d passes)\n",
		keys, dataBytes, distarray.SortKeyPasses)
	fmt.Printf("host: NumCPU=%d GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %12s %12s %14s %12s %10s\n",
		"workers", "sort time", "keys/sec", "shuffle bytes", "host bytes", "host/data")

	var worstShare float64
	for _, nw := range []int{1, 2, 4, 8} {
		tr := netobjects.NewMem()
		hostM := netobjects.NewMetrics()
		workM := netobjects.NewMetrics()
		if obsMetrics != nil {
			workM = obsMetrics
		}
		mk := func(name string, m *netobjects.Metrics) (*netobjects.Space, error) {
			sp, err := netobjects.New(netobjects.Options{
				Name:         name,
				Transports:   []netobjects.Transport{tr},
				PingInterval: time.Hour,
				CallTimeout:  2 * time.Minute,
				Metrics:      m,
			})
			if err != nil {
				return nil, err
			}
			return sp, distarray.Register(sp)
		}
		host, err := mk("e7-host", hostM)
		if err != nil {
			return err
		}
		var workers []*netobjects.Space
		closeAll := func() {
			for i := len(workers) - 1; i >= 0; i-- {
				_ = workers[i].Close()
			}
			_ = host.Close()
		}
		sorters := make([]*netobjects.Ref, nw)
		for i := 0; i < nw; i++ {
			sp, err := mk(fmt.Sprintf("e7-w%d", i), workM)
			if err != nil {
				closeAll()
				return err
			}
			workers = append(workers, sp)
			store := distarray.NewStore(sp.Metrics())
			ref, err := sp.Export(distarray.NewSortWorker(store, 0))
			if err != nil {
				closeAll()
				return err
			}
			w, err := ref.WireRep()
			if err != nil {
				closeAll()
				return err
			}
			if sorters[i], err = host.Import(w); err != nil {
				closeAll()
				return err
			}
		}
		hostBefore := hostM.BytesSent.Load() + hostM.BytesRecv.Load()
		res, err := distarray.Sort(context.Background(), distarray.SortConfig{
			Workers: sorters,
			Keys:    keys,
			Seed:    42,
			Metrics: hostM,
		})
		if err != nil {
			closeAll()
			return fmt.Errorf("e7: sort with %d workers: %w", nw, err)
		}
		hostMoved := hostM.BytesSent.Load() + hostM.BytesRecv.Load() - hostBefore
		share := float64(hostMoved) / float64(dataBytes)
		if share > worstShare {
			worstShare = share
		}
		fmt.Printf("%8d %12s %12.0f %14d %12d %9.1f%%\n",
			nw, res.Elapsed.Round(time.Millisecond),
			float64(keys)/res.Elapsed.Seconds(),
			res.ShuffledBytes, hostMoved, 100*share)
		distarray.ReleaseParts(res.Data)
		distarray.ReleaseParts(res.Stages)
		for _, r := range sorters {
			r.Release()
		}
		closeAll()
	}
	fmt.Println("shape check: shuffle bytes == passes x data bytes at every width (the data plane")
	fmt.Println("moves O(data) worker-to-worker); host bytes stay O(workers x buckets) per pass —")
	fmt.Println("counts and plans — so the host/data share shrinks as the data grows and never")
	fmt.Println("approaches the volume a store-and-forward coordinator would carry.")
	if worstShare > 0.5 {
		return fmt.Errorf("E7 acceptance failed: host moved %.0f%% of the data; the plan path is not O(histogram)", 100*worstShare)
	}
	return nil
}
