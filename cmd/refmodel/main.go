// Refmodel explores the abstract state machine of Birrell's distributed
// reference listing algorithm: it exhaustively enumerates the reachable
// configurations, checks every invariant of the correctness proof at each
// one, reproduces the life-cycle cube diagram as Graphviz DOT, exhibits
// the naive reference-counting race as a counterexample trace, and prints
// the §5 variant-cost comparison.
//
// Usage:
//
//	refmodel [-procs 3] [-copies 2] [-dot cube.dot] [-max 2000000]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"netobjects/internal/refmodel"
)

func main() {
	procs := flag.Int("procs", 3, "number of processes (p0 owns the reference)")
	copies := flag.Int("copies", 2, "make_copy budget bounding the state space")
	maxStates := flag.Int("max", 2_000_000, "state cap")
	dotFile := flag.String("dot", "", "write the observed life-cycle cube as DOT to this file")
	flag.Parse()

	cfg := refmodel.NewConfig(*procs, []refmodel.Proc{0}, *copies)
	fmt.Printf("exploring: %d processes, 1 reference, %d copies\n", *procs, *copies)
	res := refmodel.Explore(cfg, refmodel.ExploreOptions{
		MaxStates:       *maxStates,
		CheckInvariants: true,
		CheckMeasure:    true,
	})
	fmt.Printf("reachable states: %d\ntransitions:      %d\n", res.States, res.Transitions)
	if res.Truncated {
		fmt.Println("WARNING: truncated at state cap")
	}
	var rules []string
	for r := range res.RuleCounts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	fmt.Println("rule firings:")
	for _, r := range rules {
		fmt.Printf("  %-20s %d\n", r, res.RuleCounts[r])
	}
	if res.Violation != nil {
		fmt.Printf("INVARIANT VIOLATION: %v\ntrace:\n  %s\n",
			res.Violation.Err, strings.Join(res.Violation.Trace, "\n  "))
		os.Exit(1)
	}
	fmt.Println("all invariants hold at every reachable state (lemmas 1-11, safety theorem, termination measure)")

	// Life-cycle edges (the cube).
	edges := map[string]bool{}
	for _, set := range res.StateEdges {
		for e := range set {
			edges[e] = true
		}
	}
	var es []string
	for e := range edges {
		es = append(es, e)
	}
	sort.Strings(es)
	fmt.Printf("observed life-cycle edges: %s\n", strings.Join(es, ", "))
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(res.CubeDOT()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "refmodel:", err)
			os.Exit(1)
		}
		fmt.Printf("cube diagram written to %s\n", *dotFile)
	}

	// The naive baseline's race.
	fmt.Println("\nnaive reference counting (the strawman):")
	if trace := refmodel.FindNaiveRace(*procs, 1, *maxStates); trace != nil {
		fmt.Printf("  premature collection counterexample (%d steps):\n", len(trace))
		for _, step := range trace {
			fmt.Printf("    %s\n", step)
		}
	} else {
		fmt.Println("  no race found (unexpected for procs >= 3)")
	}

	// FIFO-variant safety.
	fc := refmodel.NewFConfig(*procs, []refmodel.Proc{0}, *copies)
	states, violation, _ := refmodel.FExplore(fc, *maxStates)
	fmt.Printf("\nFIFO variant: %d reachable states, ", states)
	if violation != nil {
		fmt.Printf("VIOLATION: %v\n", violation)
		os.Exit(1)
	}
	fmt.Println("safety holds at every state")

	// Owner-sender optimisation (§5.2.1): refute the naive protocol,
	// verify the repaired one.
	nc := refmodel.NewFConfig(2, []refmodel.Proc{0}, 2)
	if _, violation, trace := refmodel.OSExplore(nc, refmodel.OwnerSenderNaive, *maxStates); violation != nil {
		fmt.Println("\nowner-sender (naive §5.2.1): UNSAFE as the paper hints — counterexample:")
		for _, step := range trace {
			fmt.Printf("    %s\n", step)
		}
	} else {
		fmt.Println("\nowner-sender (naive §5.2.1): no race found (unexpected)")
	}
	rc := refmodel.NewFConfig(*procs, []refmodel.Proc{0}, *copies)
	rstates, violation, _ := refmodel.OSExplore(rc, refmodel.OwnerSenderRepaired, *maxStates)
	if violation != nil {
		fmt.Printf("owner-sender (repaired): VIOLATION: %v\n", violation)
		os.Exit(1)
	}
	fmt.Printf("owner-sender (repaired): %d reachable states, safety holds\n", rstates)

	// Variant cost table (§5 ablation).
	rows, err := refmodel.CompareVariants()
	if err != nil {
		fmt.Fprintln(os.Stderr, "refmodel:", err)
		os.Exit(1)
	}
	fmt.Println("\nvariant costs (T5):")
	fmt.Printf("  %-14s %-16s %9s %9s\n", "variant", "scenario", "messages", "blocking")
	for _, r := range rows {
		fmt.Printf("  %-14s %-16s %9d %9d\n", r.Variant, r.Scenario, r.Messages, r.BlockingEvents)
	}
}
