// Stubgen is the stub compiler of the network objects system: it reads a
// Go source file, finds interface declarations, and writes typed client
// stubs plus registration helpers for them.
//
// Usage:
//
//	stubgen -src api.go [-types Account,Directory] [-o api_stubs.go] [-pkg name]
//
// With no -types, stubs are generated for every exported interface in the
// file. The generated stubs marshal arguments at their declared types
// (the fast path), carry the interface fingerprint for version checking,
// and register a factory so surrogates arrive ready to call.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netobjects/internal/stubgen"
)

func main() {
	src := flag.String("src", "", "source file containing the interface declarations")
	types := flag.String("types", "", "comma-separated interface names (default: all exported)")
	out := flag.String("o", "", "output file (default: stdout)")
	pkg := flag.String("pkg", "", "package name for the generated file (default: same as source)")
	runtimeImport := flag.String("runtime", "netobjects", "import path of the runtime package")
	flag.Parse()

	if *src == "" {
		fmt.Fprintln(os.Stderr, "stubgen: -src is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stubgen:", err)
		os.Exit(1)
	}
	var names []string
	if *types != "" {
		names = strings.Split(*types, ",")
	}
	generated, err := stubgen.Generate(*src, data, names, stubgen.Options{
		Package:       *pkg,
		RuntimeImport: *runtimeImport,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(generated)
		return
	}
	if err := os.WriteFile(*out, generated, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stubgen:", err)
		os.Exit(1)
	}
}
