// Netobjd is the network objects agent daemon: it runs a space that
// serves a name directory at the well-known agent index, through which
// other processes publish and import objects by name — the bootstrap of
// the system, as in the original design of one agent per machine.
//
// Usage:
//
//	netobjd [-listen tcp:127.0.0.1:7707] [-http 127.0.0.1:7708]
//	        [-trace-out trace.jsonl] [-v]
//	netobjd -peers tcp:h0:7707,tcp:h1:7707,tcp:h2:7707 -replica 0 [-join tcp:h1:7707]
//
// The daemon prints its endpoints on startup; pass one to naming.Lookup /
// naming.Bind from other processes. With -http it also serves the
// observability endpoint: /metrics (Prometheus text) and /debug/netobj
// (live export/import tables, dirty sets, pool occupancy, recent trace
// events). With -trace-out the buffered trace events are written to the
// given file as JSON lines on shutdown (the live equivalent is
// /debug/netobj/trace.jsonl).
//
// Without -peers the daemon runs the classic single-agent directory —
// nothing about that mode changed. With -peers it instead joins the
// replicated agent tier as member -replica of the listed cluster: writes
// chain through the sequencer (the lowest live member), any replica
// serves reads, and clients using registry.NewResolver cache lookups
// under a lease and fail over between the replicas. -join names a
// running replica to catch up from before serving, for adding a member
// to a cluster that is already live. The member listens on its own entry
// of -peers, so -listen is ignored in this mode.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netobjects"
	"netobjects/internal/naming"
	"netobjects/internal/registry"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:7707", "endpoint to listen on")
	httpAddr := flag.String("http", "", "address for the /metrics and /debug/netobj endpoint (disabled when empty)")
	traceOut := flag.String("trace-out", "", "write buffered trace events to this file as JSON lines on shutdown")
	peers := flag.String("peers", "", "comma-separated endpoints of every member of a replicated agent tier (single-agent mode when empty)")
	replicaIdx := flag.Int("replica", 0, "this member's index into -peers")
	join := flag.String("join", "", "running replica to catch up from before serving (when joining a live cluster)")
	verbose := flag.Bool("v", false, "log runtime events")
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		if *replicaIdx < 0 || *replicaIdx >= len(peerList) {
			fmt.Fprintf(os.Stderr, "netobjd: -replica %d out of range for %d peers\n", *replicaIdx, len(peerList))
			os.Exit(1)
		}
		// A replica listens on its own peers entry and must run the
		// weak-reference cleanup: references arriving on the write and
		// replication paths are reclaimed through it.
		*listen = peerList[*replicaIdx]
	}
	opts := netobjects.Options{
		Name:            "netobjd",
		ListenEndpoints: []string{*listen},
		AutoRelease:     peerList != nil,
		Logger:          logger,
	}
	var ring *netobjects.RingTracer
	if *httpAddr != "" || *traceOut != "" {
		// The debug page and the trace dump show recent events only when
		// a ring tracer is installed; otherwise call paths stay untraced.
		ring = netobjects.NewRingTracer(256)
		opts.Tracer = ring
	}
	sp, err := netobjects.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	var agent *naming.Agent
	var rep *registry.Replica
	if peerList != nil {
		rep, err = registry.Serve(sp, registry.Options{
			Peers:    peerList,
			Self:     *replicaIdx,
			JoinFrom: *join,
			Logf: func(format string, args ...any) {
				if logger != nil {
					logger.Info(fmt.Sprintf(format, args...))
				}
			},
		})
		if err == nil {
			agent = rep.Agent()
		}
	} else {
		agent, err = naming.Serve(sp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	eps := sp.Endpoints()
	if len(eps) == 0 {
		fmt.Fprintln(os.Stderr, "netobjd: no listening endpoints")
		os.Exit(1)
	}
	if rep != nil {
		fmt.Printf("netobjd: serving replica %d of %d at %s (space %v)\n",
			*replicaIdx, len(peerList), strings.Join(eps, ", "), sp.ID())
	} else {
		fmt.Printf("netobjd: serving agent at %s (space %v)\n", strings.Join(eps, ", "), sp.ID())
	}

	if *httpAddr != "" {
		o := sp.Observability()
		o.SetDebugSection("agent", func() string {
			names, err := agent.List()
			if err != nil {
				return fmt.Sprintf("%d names bound", agent.Len())
			}
			return fmt.Sprintf("%d names bound: %s", len(names), strings.Join(names, ", "))
		})
		if rep != nil {
			o.SetDebugSection("registry", rep.StatusString)
		}
		srv := &http.Server{Addr: *httpAddr, Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("netobjd: telemetry at http://%s/debug/netobj\n", *httpAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "netobjd: http:", err)
			}
		}()
		defer srv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("netobjd: shutting down")
	if rep != nil {
		rep.Close()
	}
	_ = sp.Close()

	if *traceOut != "" && ring != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netobjd: trace-out:", err)
			os.Exit(1)
		}
		err = ring.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "netobjd: trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("netobjd: trace written to %s\n", *traceOut)
	}
}
