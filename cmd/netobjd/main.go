// Netobjd is the network objects agent daemon: it runs a space that
// serves a name directory at the well-known agent index, through which
// other processes publish and import objects by name — the bootstrap of
// the system, as in the original design of one agent per machine.
//
// Usage:
//
//	netobjd [-listen tcp:127.0.0.1:7707] [-v]
//
// The daemon prints its endpoint on startup; pass that endpoint to
// naming.Lookup / naming.Bind from other processes.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"netobjects"
	"netobjects/internal/naming"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:7707", "endpoint to listen on")
	verbose := flag.Bool("v", false, "log runtime events")
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	sp, err := netobjects.New(netobjects.Options{
		Name:            "netobjd",
		ListenEndpoints: []string{*listen},
		Logger:          logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	agent, err := naming.Serve(sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	_ = agent
	fmt.Printf("netobjd: serving agent at %s (space %v)\n", sp.Endpoints()[0], sp.ID())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("netobjd: shutting down")
	_ = sp.Close()
}
