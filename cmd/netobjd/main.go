// Netobjd is the network objects agent daemon: it runs a space that
// serves a name directory at the well-known agent index, through which
// other processes publish and import objects by name — the bootstrap of
// the system, as in the original design of one agent per machine.
//
// Usage:
//
//	netobjd [-listen tcp:127.0.0.1:7707] [-http 127.0.0.1:7708]
//	        [-trace-out trace.jsonl] [-v]
//
// The daemon prints its endpoints on startup; pass one to naming.Lookup /
// naming.Bind from other processes. With -http it also serves the
// observability endpoint: /metrics (Prometheus text) and /debug/netobj
// (live export/import tables, dirty sets, pool occupancy, recent trace
// events). With -trace-out the buffered trace events are written to the
// given file as JSON lines on shutdown (the live equivalent is
// /debug/netobj/trace.jsonl).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netobjects"
	"netobjects/internal/naming"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:7707", "endpoint to listen on")
	httpAddr := flag.String("http", "", "address for the /metrics and /debug/netobj endpoint (disabled when empty)")
	traceOut := flag.String("trace-out", "", "write buffered trace events to this file as JSON lines on shutdown")
	verbose := flag.Bool("v", false, "log runtime events")
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	opts := netobjects.Options{
		Name:            "netobjd",
		ListenEndpoints: []string{*listen},
		Logger:          logger,
	}
	var ring *netobjects.RingTracer
	if *httpAddr != "" || *traceOut != "" {
		// The debug page and the trace dump show recent events only when
		// a ring tracer is installed; otherwise call paths stay untraced.
		ring = netobjects.NewRingTracer(256)
		opts.Tracer = ring
	}
	sp, err := netobjects.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	agent, err := naming.Serve(sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netobjd:", err)
		os.Exit(1)
	}
	eps := sp.Endpoints()
	if len(eps) == 0 {
		fmt.Fprintln(os.Stderr, "netobjd: no listening endpoints")
		os.Exit(1)
	}
	fmt.Printf("netobjd: serving agent at %s (space %v)\n", strings.Join(eps, ", "), sp.ID())

	if *httpAddr != "" {
		o := sp.Observability()
		o.SetDebugSection("agent", func() string {
			names, err := agent.List()
			if err != nil {
				return fmt.Sprintf("%d names bound", agent.Len())
			}
			return fmt.Sprintf("%d names bound: %s", len(names), strings.Join(names, ", "))
		})
		srv := &http.Server{Addr: *httpAddr, Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("netobjd: telemetry at http://%s/debug/netobj\n", *httpAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "netobjd: http:", err)
			}
		}()
		defer srv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("netobjd: shutting down")
	_ = sp.Close()

	if *traceOut != "" && ring != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netobjd: trace-out:", err)
			os.Exit(1)
		}
		err = ring.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "netobjd: trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("netobjd: trace written to %s\n", *traceOut)
	}
}
